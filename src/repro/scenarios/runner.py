"""Cross-solver conformance harness: run scenario cases through the
analytic stack and the Monte-Carlo engines and evaluate the declared
per-cell checks.

For every :class:`~repro.scenarios.schema.ScenarioCase` the harness

* solves the plane-capacity distribution ``P(k)`` on the counted SAN
  chain (and, where the cell declares it, on the symmetry-lumped and
  unlumped expanded chains -- :func:`repro.analytic.capacity
  .capacity_cross_check`);
* composes the analytic QoS measure ``P(Y >= y)`` (paper Eq. 3) from
  the closed-form conditionals, or from the general numerical
  integrator for non-exponential duration models;
* estimates the same measure by seeded Monte-Carlo: capacities drawn
  multinomially from ``P(k)``, signals classified by the vectorised
  batch classifier (:func:`repro.simulation.qos_montecarlo
  .classify_qos_levels`);
* for fault cells, runs a seeded batched protocol campaign
  (:class:`repro.faults.campaign.Campaign`, which replays
  :class:`~repro.simulation.batch.ScenarioTemplate` replications) and
  scores it against the analytic references where they exist;
* records a fallback/exception taxonomy: per-cell deltas of the
  capacity solver's ``solver_fallbacks`` / ``structure_fallbacks``
  counters, and the exception types any stage raised.

Checks (a case declares a subset via ``ScenarioCase.checks``):

``analytic_vs_mc``
    For every threshold ``y in {1, 2, 3}``, the analytic ``P(Y >= y)``
    must lie inside the Wilson interval of the Monte-Carlo count at the
    case's declared confidence.
``alert_deadline``
    The alert-deadline hit rate ``P(Y >= 1)`` specifically -- the
    operational headline number -- same Wilson containment.
``lumped_vs_counted``
    Max pointwise ``|P(k)|`` delta between the lumped expanded chain
    and the counted chain, within ``lumped_tolerance``.
``lumped_vs_unlumped``
    Same delta between the lumped and *unlumped* expanded chains
    (small constellations only: the unlumped space is exponential).
``fault_campaign``
    Wilson sanity of every campaign cell, plus analytic containment
    for the fault-free plan (both schemes) and, when applicable, the
    all-successors-fail-silent degradation reference.
``protocol_mc``
    Exact conformance of the struct-of-arrays protocol engine
    (:mod:`repro.simulation.vector`) against the scalar event-driven
    oracle on shared randomness tapes at the cell's
    ``fault_capacity``: every replication's ``(level, detected)`` pair
    must match bit for bit, and the divergence-mask fallback fraction
    is recorded.  Off by default in generated corpora; ``corpus run
    --protocol-mc`` forces it onto every cell.

All randomness is keyed by ``ScenarioCase.mc_seed``; rerunning a case
or a corpus reproduces the same counts exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analytic.capacity import (
    capacity_cross_check,
    capacity_distribution,
    capacity_solver_stats,
)
from repro.analytic.composition import compose
from repro.analytic.distributions import Exponential
from repro.analytic.qos_model import (
    conditional_distribution,
    conditional_distribution_general,
)
from repro.core.qos import QoSDistribution, QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.faults.campaign import Campaign, PlanOutcome
from repro.faults.plan import FaultPlan
from repro.faults.stats import wilson_interval
from repro.faults.validation import fail_silent_reference
from repro.scenarios.schema import ScenarioCase
from repro.simulation.qos_montecarlo import classify_qos_levels

__all__ = [
    "CheckOutcome",
    "CellResult",
    "CorpusRunResult",
    "run_case",
    "run_corpus",
]

#: The thresholds scored by the analytic-vs-MC containment checks.
_THRESHOLDS = (
    QoSLevel.SINGLE,
    QoSLevel.SEQUENTIAL_DUAL,
    QoSLevel.SIMULTANEOUS_DUAL,
)

#: Slack for Wilson-bound containment: at extreme counts (0 or n
#: successes) the interval endpoints land within a few ulps of the
#: point estimate, so exact comparisons fail spuriously.
_WILSON_EPS = 1e-9


@dataclass(frozen=True)
class CheckOutcome:
    """Result of one declared check on one cell."""

    name: str
    passed: bool
    details: Dict[str, object] = field(default_factory=dict)


@dataclass
class CellResult:
    """Everything the scorer needs about one executed cell.

    ``status`` is ``"pass"`` (every declared check passed), ``"fail"``
    (some check failed) or ``"error"`` (a stage raised); ``fallbacks``
    holds the per-cell deltas of the capacity solver's fallback
    counters and ``exceptions`` the taxonomy of raised exception types.
    """

    case_id: str
    family: str
    status: str
    checks: List[CheckOutcome]
    metrics: Dict[str, object]
    fallbacks: Dict[str, int]
    exceptions: Dict[str, int]
    seconds: float

    def check(self, name: str) -> CheckOutcome:
        for outcome in self.checks:
            if outcome.name == name:
                return outcome
        raise ConfigurationError(
            f"cell {self.case_id} ran no check named {name!r}"
        )


@dataclass
class CorpusRunResult:
    """All cells of one corpus run plus throughput accounting.

    ``campaign`` holds the orchestrator's scheduling statistics when
    the run went through :class:`repro.campaign.CampaignRunner`
    (``n_jobs > 1`` or a checkpoint journal), ``None`` for the plain
    sequential path."""

    cells: List[CellResult]
    seconds: float
    campaign: Optional[Dict[str, object]] = None

    @property
    def cells_per_sec(self) -> float:
        if self.seconds <= 0.0:
            return float("inf")
        return len(self.cells) / self.seconds

    def counts(self) -> Dict[str, int]:
        """Cells per status."""
        counts = {"pass": 0, "fail": 0, "error": 0}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        return counts


# ----------------------------------------------------------------------
# Analytic pipeline
# ----------------------------------------------------------------------
def _conditional_for(case: ScenarioCase) -> Callable[[int], QoSDistribution]:
    """``k -> P(Y = . | k)`` for the case's duration model: the paper's
    closed forms for exponential durations, the numerical integrator
    otherwise."""
    params = case.params()
    scheme = case.scheme_enum
    if case.duration_model == "exponential":
        def conditional(k: int) -> QoSDistribution:
            return conditional_distribution(case.geometry(k), params, scheme)
    else:
        duration = case.signal_duration()
        computation = Exponential(params.nu)
        def conditional(k: int) -> QoSDistribution:
            return conditional_distribution_general(
                case.geometry(k), params.tau, duration, computation, scheme
            )
    return conditional


def _truncate_pk(case: ScenarioCase, pk: Mapping[int, float]) -> Dict[int, float]:
    """Eq. (3) truncation of ``P(k)``: keep ``k >= eta - 1``, extending
    the floor downwards while the retained mass is below 96% (mirrors
    :meth:`repro.core.framework.OAQFramework.capacity_probabilities`).
    ``k = 0`` is always dropped -- an empty plane has no geometry and
    the spare policies make it negligible.  Both the analytic
    composition and the Monte-Carlo sampler consume this same truncated
    distribution, so the two sides estimate the same measure."""
    floor = max(1, case.params().eta - 1)
    while floor > 1:
        retained = {k: p for k, p in pk.items() if k >= floor}
        if sum(retained.values()) >= 0.96:
            return retained
        floor -= 1
    return {k: p for k, p in pk.items() if k >= 1}


def _composed_analytic(
    case: ScenarioCase, pk: Mapping[int, float]
) -> QoSDistribution:
    # Aggressive spare policies can push more than compose's default 5%
    # of the mass below the truncation floor; widen the tolerance to
    # what was actually dropped (the comparison stays exact because the
    # Monte-Carlo sampler draws from the same renormalised weights).
    dropped = max(0.0, 1.0 - sum(pk.values()))
    return compose(
        pk,
        _conditional_for(case),
        truncation_tolerance=max(0.05, dropped + 1e-9),
    )


# ----------------------------------------------------------------------
# Monte-Carlo pipeline
# ----------------------------------------------------------------------
def _mc_level_counts(
    case: ScenarioCase, pk: Mapping[int, float]
) -> Tuple[Dict[int, int], int]:
    """Seeded Monte-Carlo estimate of the composed QoS measure.

    Draws the per-sample capacity ``k`` multinomially from ``P(k)``,
    then draws ``(onset, duration, computation)`` per capacity stratum
    and classifies with the vectorised batch classifier.  Returns
    ``(level -> count, samples)``; deterministic under
    ``case.mc_seed``."""
    params = case.params()
    scheme = case.scheme_enum
    duration_dist = case.signal_duration()
    samples = case.samples
    ks = sorted(k for k, p in pk.items() if p > 0.0)
    probabilities = np.array([pk[k] for k in ks], dtype=float)
    probabilities = probabilities / probabilities.sum()

    root = np.random.SeedSequence(case.mc_seed)
    alloc_rng = np.random.default_rng(root)
    allocation = alloc_rng.multinomial(samples, probabilities)
    counts: Dict[int, int] = {int(level): 0 for level in QoSLevel}
    children = root.spawn(len(ks))
    for k, n_k, child in zip(ks, allocation, children):
        if n_k == 0:
            continue
        rng = np.random.default_rng(child)
        geometry = case.geometry(k)
        onset = rng.uniform(0.0, geometry.l1, size=int(n_k))
        duration = duration_dist.sample_many(rng, int(n_k))
        computation = rng.exponential(1.0 / params.nu, size=int(n_k))
        levels = classify_qos_levels(
            geometry, params, scheme, onset, duration, computation
        )
        values, value_counts = np.unique(levels, return_counts=True)
        for value, count in zip(values.tolist(), value_counts.tolist()):
            counts[int(value)] += int(count)
    return counts, samples


def _count_at_least(counts: Mapping[int, int], level: QoSLevel) -> int:
    return sum(count for value, count in counts.items() if value >= int(level))


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------
def _containment_check(
    name: str,
    analytic: QoSDistribution,
    counts: Mapping[int, int],
    samples: int,
    confidence: float,
    thresholds: Sequence[QoSLevel],
) -> CheckOutcome:
    levels: Dict[str, object] = {}
    passed = True
    for level in thresholds:
        successes = _count_at_least(counts, level)
        interval = wilson_interval(successes, samples, confidence=confidence)
        expected = analytic.at_least(level)
        contained = (
            interval.low - _WILSON_EPS <= expected <= interval.high + _WILSON_EPS
        )
        passed = passed and contained
        levels[f"p_ge_{int(level)}"] = {
            "analytic": expected,
            "mc": successes / samples,
            "wilson_low": interval.low,
            "wilson_high": interval.high,
            "successes": successes,
            "contained": contained,
        }
    return CheckOutcome(
        name=name,
        passed=passed,
        details={"samples": samples, "confidence": confidence, **levels},
    )


def _is_successors_fail_all(plan: FaultPlan) -> bool:
    """Whether ``plan`` is exactly the all-successors-fail-silent-at-0
    plan the degraded closed form covers."""
    return (
        plan.fail_successors_at == 0.0
        and plan.fail_successor_count is None
        and not plan.fail_silent
        and plan.crosslink_loss == 0.0
        and not plan.link_loss
        and not plan.downlink_blackouts
        and plan.membership_staleness is None
    )


def _fault_campaign_check(case: ScenarioCase) -> Tuple[CheckOutcome, Dict[str, object]]:
    """Run the seeded batched fault campaign for a fault cell and score
    it: Wilson sanity on every (plan, scheme) outcome, analytic
    containment for the fault-free plan, and the fail-silent
    degradation reference where the plan matches it."""
    assert case.fault_plan is not None
    params = case.params()
    geometry = case.geometry(case.fault_capacity)
    plans = [FaultPlan.fault_free()]
    if not case.fault_plan.is_fault_free:
        plans.append(case.fault_plan)
    campaign = Campaign(
        params,
        capacity=case.fault_capacity,
        plans=plans,
        schemes=(Scheme.OAQ, Scheme.BAQ),
        runs=case.fault_runs,
        seed=case.mc_seed,
        confidence=case.confidence,
    )
    result = campaign.run()

    passed = True
    details: Dict[str, object] = {
        "runs": case.fault_runs,
        "confidence": case.confidence,
        "plans": [plan.name for plan in plans],
    }
    metrics: Dict[str, object] = {}

    def reference_for(outcome: PlanOutcome) -> Optional[QoSDistribution]:
        if outcome.plan.is_fault_free:
            return conditional_distribution(geometry, params, outcome.scheme)
        if _is_successors_fail_all(outcome.plan) and not geometry.overlapping:
            return fail_silent_reference(geometry, params, outcome.scheme)
        return None

    for outcome in result.outcomes:
        key = f"{outcome.plan.name}/{outcome.scheme.name}"
        cell: Dict[str, object] = {}
        sane = 0 <= outcome.detected <= outcome.runs
        for level in _THRESHOLDS:
            successes = outcome.count_at_least(level)
            interval = wilson_interval(
                successes, outcome.runs, confidence=case.confidence
            )
            point = successes / outcome.runs
            sane = sane and (
                -_WILSON_EPS
                <= interval.low
                <= point + _WILSON_EPS
                and point - _WILSON_EPS
                <= interval.high
                <= 1.0 + _WILSON_EPS
            )
            cell[f"p_ge_{int(level)}"] = {
                "mc": point,
                "wilson_low": interval.low,
                "wilson_high": interval.high,
            }
        cell["wilson_sane"] = sane
        passed = passed and sane

        reference = reference_for(outcome)
        if reference is not None:
            contained = True
            for level in _THRESHOLDS:
                successes = outcome.count_at_least(level)
                interval = wilson_interval(
                    successes, outcome.runs, confidence=case.confidence
                )
                expected = reference.at_least(level)
                level_ok = (
                    interval.low - _WILSON_EPS
                    <= expected
                    <= interval.high + _WILSON_EPS
                )
                cell[f"p_ge_{int(level)}"]["analytic"] = expected
                cell[f"p_ge_{int(level)}"]["contained"] = level_ok
                contained = contained and level_ok
            cell["reference_contained"] = contained
            passed = passed and contained
        details[key] = cell
        metrics[f"fault/{key}/mean_level"] = outcome.mean_level()
    return CheckOutcome("fault_campaign", passed, details), metrics


#: Replication cap for the ``protocol_mc`` exactness check: every row
#: is re-run through the scalar oracle (~0.1 ms each), so the check is
#: bounded independently of the case's Monte-Carlo sample budget.
_PROTOCOL_MC_CAP = 1_024


def _protocol_mc_check(case: ScenarioCase) -> Tuple[CheckOutcome, Dict[str, object]]:
    """Exact vector-vs-oracle conformance at ``case.fault_capacity``:
    run the same signal variates and protocol tapes through the
    struct-of-arrays engine and the scalar event-driven engine and
    require bit-for-bit equal ``(level, detected)`` per replication."""
    from repro.simulation.batch import ScenarioTemplate
    from repro.simulation.vector import (
        draw_protocol_tapes,
        scalar_reference_levels,
        vector_batch_stats,
    )

    params = case.params()
    geometry = case.geometry(case.fault_capacity)
    template = ScenarioTemplate(geometry, params, scheme=case.scheme_enum)
    n = int(min(case.samples, _PROTOCOL_MC_CAP))
    child = np.random.SeedSequence(case.mc_seed).spawn(1)[0]
    # Two generators on the same child stream: one consumed by the
    # vector engine, one replayed into the oracle's tapes, so both
    # sides see identical draws.
    rng_vector = np.random.default_rng(child)
    rng_oracle = np.random.default_rng(child)
    duration_dist = case.signal_duration()
    onsets = rng_vector.uniform(0.0, geometry.l1, size=n)
    durations = duration_dist.sample_many(rng_vector, n)
    rng_oracle.uniform(0.0, geometry.l1, size=n)
    duration_dist.sample_many(rng_oracle, n)

    before = vector_batch_stats()
    levels_vector, detected_vector = template.sample_levels(
        rng_vector, onsets, durations, engine="vector"
    )
    after = vector_batch_stats()
    fallbacks = int(after["fallbacks"] - before["fallbacks"])

    tapes = draw_protocol_tapes(template, rng_oracle, n)
    levels_oracle, detected_oracle = scalar_reference_levels(
        template, onsets, durations, tapes
    )
    level_mismatches = int(np.count_nonzero(levels_vector != levels_oracle))
    detected_mismatches = int(
        np.count_nonzero(detected_vector != detected_oracle)
    )
    passed = level_mismatches == 0 and detected_mismatches == 0
    counts = np.bincount(levels_vector, minlength=4)
    details: Dict[str, object] = {
        "samples": n,
        "capacity": case.fault_capacity,
        "level_mismatches": level_mismatches,
        "detected_mismatches": detected_mismatches,
        "fallback_fraction": fallbacks / n if n else 0.0,
        "level_counts": [int(count) for count in counts[:4]],
    }
    metrics = {"protocol_mc_fallback_fraction": details["fallback_fraction"]}
    return CheckOutcome("protocol_mc", passed, details), metrics


# ----------------------------------------------------------------------
# Cell and corpus execution
# ----------------------------------------------------------------------
def run_case(
    case: ScenarioCase, *, extra_checks: Sequence[str] = ()
) -> CellResult:
    """Run every check ``case`` declares and return the cell result.

    ``extra_checks`` appends checks beyond the declared set (the CLI's
    ``--protocol-mc`` uses it to force the vector-engine conformance
    check onto every cell without touching the corpus on disk).

    Exceptions raised by a stage never propagate: they are recorded in
    the cell's exception taxonomy (type name -> count), fail the check
    that raised them and flip the cell status to ``"error"``."""
    start = time.perf_counter()
    stats_before = capacity_solver_stats()
    checks: List[CheckOutcome] = []
    metrics: Dict[str, object] = {}
    exceptions: Dict[str, int] = {}

    def note_exception(check_name: str, error: Exception) -> None:
        kind = type(error).__name__
        exceptions[kind] = exceptions.get(kind, 0) + 1
        checks.append(
            CheckOutcome(
                check_name,
                False,
                details={"exception": kind, "message": str(error)},
            )
        )

    check_names = list(case.checks) + [
        name for name in extra_checks if name not in case.checks
    ]
    needs_composition = bool(
        {"analytic_vs_mc", "alert_deadline"} & set(check_names)
    )
    pk: Optional[Dict[int, float]] = None
    analytic: Optional[QoSDistribution] = None
    counts: Optional[Dict[int, int]] = None
    samples = 0
    if needs_composition:
        try:
            full_pk = capacity_distribution(
                case.capacity_config(), stages=case.stages
            )
            pk = _truncate_pk(case, full_pk)
            analytic = _composed_analytic(case, pk)
            counts, samples = _mc_level_counts(case, pk)
            metrics["p_k"] = {str(k): p for k, p in pk.items()}
            metrics["p_k_retained_mass"] = sum(pk.values())
            for level in _THRESHOLDS:
                metrics[f"analytic_p_ge_{int(level)}"] = analytic.at_least(level)
                metrics[f"mc_p_ge_{int(level)}"] = (
                    _count_at_least(counts, level) / samples
                )
            metrics["samples"] = samples
        except Exception as error:  # noqa: BLE001 - taxonomy by design
            for name in ("analytic_vs_mc", "alert_deadline"):
                if name in check_names:
                    note_exception(name, error)
            pk = analytic = counts = None

    for name in check_names:
        if name == "analytic_vs_mc" and analytic is not None:
            checks.append(
                _containment_check(
                    name, analytic, counts, samples, case.confidence, _THRESHOLDS
                )
            )
        elif name == "alert_deadline" and analytic is not None:
            outcome = _containment_check(
                name,
                analytic,
                counts,
                samples,
                case.confidence,
                (QoSLevel.SINGLE,),
            )
            metrics["alert_deadline_hit_rate"] = analytic.at_least(
                QoSLevel.SINGLE
            )
            checks.append(outcome)
        elif name == "lumped_vs_counted":
            try:
                report = capacity_cross_check(
                    case.capacity_config(), stages=case.stages
                )
                delta = float(report["lumped_vs_counted_delta"])
                metrics["lumped_vs_counted_delta"] = delta
                checks.append(
                    CheckOutcome(
                        name,
                        delta <= case.lumped_tolerance,
                        details={
                            "delta": delta,
                            "tolerance": case.lumped_tolerance,
                        },
                    )
                )
            except Exception as error:  # noqa: BLE001
                note_exception(name, error)
        elif name == "lumped_vs_unlumped":
            try:
                report = capacity_cross_check(
                    case.capacity_config(),
                    stages=case.stages,
                    include_unlumped=True,
                )
                delta = float(report["lumped_vs_unlumped_delta"])
                metrics["lumped_vs_unlumped_delta"] = delta
                checks.append(
                    CheckOutcome(
                        name,
                        delta <= case.lumped_tolerance,
                        details={
                            "delta": delta,
                            "tolerance": case.lumped_tolerance,
                        },
                    )
                )
            except Exception as error:  # noqa: BLE001
                note_exception(name, error)
        elif name == "fault_campaign":
            try:
                outcome, fault_metrics = _fault_campaign_check(case)
                metrics.update(fault_metrics)
                checks.append(outcome)
            except Exception as error:  # noqa: BLE001
                note_exception(name, error)
        elif name == "protocol_mc":
            try:
                outcome, protocol_metrics = _protocol_mc_check(case)
                metrics.update(protocol_metrics)
                checks.append(outcome)
            except Exception as error:  # noqa: BLE001
                note_exception(name, error)

    stats_after = capacity_solver_stats()
    fallbacks = {
        key: stats_after[key] - stats_before[key]
        for key in ("solver_fallbacks", "structure_fallbacks")
    }
    if exceptions:
        status = "error"
    elif all(outcome.passed for outcome in checks):
        status = "pass"
    else:
        status = "fail"
    return CellResult(
        case_id=case.case_id,
        family=case.family,
        status=status,
        checks=checks,
        metrics=metrics,
        fallbacks=fallbacks,
        exceptions=exceptions,
        seconds=time.perf_counter() - start,
    )


def _case_topology_affinity(case: ScenarioCase):
    """Campaign affinity key: the capacity topology (see
    :func:`repro.analytic.capacity.capacity_topology_key`).  Cases
    sharing a SAN topology execute consecutively on one worker, so the
    group assembles/refines/quotients its structure once and every
    further case re-rates it with warm-started solves."""
    from repro.analytic.capacity import capacity_topology_key

    return capacity_topology_key(case.capacity_config(), case.stages)


def run_corpus(
    cases: Sequence[ScenarioCase],
    *,
    progress: Optional[Callable[[CellResult], None]] = None,
    extra_checks: Sequence[str] = (),
    n_jobs: int = 1,
    journal: Optional[str] = None,
) -> CorpusRunResult:
    """Run every case (in the given order -- the corpus reader already
    sorts by case id) and return the collected results.
    ``extra_checks`` is forwarded to every :func:`run_case`.

    The default (``n_jobs=1``, no ``journal``) runs every cell in this
    process, in order.  ``n_jobs > 1`` or a ``journal`` path routes the
    run through the campaign orchestrator: cases are grouped into
    chunks by capacity-topology affinity, executed with chunk-level
    state isolation (results byte-identical at any worker count -- the
    per-cell fallback deltas run_case samples stay exact because each
    worker's counters only move for its own cells), and journaled
    chunk-by-chunk for checkpoint/resume.  ``progress`` then fires per
    cell in chunk-completion order rather than corpus order."""
    if not cases:
        raise ConfigurationError("run_corpus needs at least one case")
    start = time.perf_counter()
    if n_jobs == 1 and journal is None:
        cells: List[CellResult] = []
        for case in cases:
            cell = run_case(case, extra_checks=extra_checks)
            cells.append(cell)
            if progress is not None:
                progress(cell)
        return CorpusRunResult(cells=cells, seconds=time.perf_counter() - start)

    import functools

    from repro.campaign import CampaignRunner

    def on_chunk(outcome) -> None:
        if progress is not None:
            for cell in outcome.rows:
                progress(cell)

    runner = CampaignRunner(n_jobs, journal=journal)
    campaign = runner.run(
        functools.partial(run_case, extra_checks=tuple(extra_checks)),
        list(cases),
        affinity=_case_topology_affinity,
        on_chunk=on_chunk,
    )
    return CorpusRunResult(
        cells=list(campaign.rows),
        seconds=time.perf_counter() - start,
        campaign={**campaign.stats, "fingerprint": campaign.fingerprint},
    )
