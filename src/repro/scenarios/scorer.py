"""Machine-readable scorecards for corpus runs.

:func:`score_run` turns a :class:`~repro.scenarios.runner
.CorpusRunResult` into a JSON-serialisable **scorecard**: a per-cell
record (status, declared checks with their outcomes and details,
metrics, fallback and exception taxonomies) plus a corpus-level
summary (pass/fail/error counts, check totals, unexplained-fallback
count, throughput).  Scorecards are what gets checked in as the golden
reference (``tests/golden/corpus/scorecard.json``) and what the
``diff`` subcommand compares against.

Timing fields (``seconds``, ``total_seconds``, ``cells_per_sec``) are
recorded but *never* compared by :func:`diff_scorecards` -- they vary
run to run; everything else in a scorecard is deterministic for a
fixed corpus, so a non-empty diff means behaviour actually changed.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional

from repro.errors import ConfigurationError
from repro.experiments.report import json_safe
from repro.scenarios.runner import CorpusRunResult
from repro.scenarios.schema import CorpusMetadata, dumps_canonical

__all__ = [
    "SCORECARD_VERSION",
    "score_run",
    "scorecard_to_json",
    "load_scorecard",
    "diff_scorecards",
]

#: Version of the scorecard layout (independent of the case schema).
SCORECARD_VERSION = 1

#: Keys excluded from scorecard diffs: run-to-run timing noise.
_TIMING_KEYS = frozenset({"seconds", "total_seconds", "cells_per_sec"})

#: Absolute tolerance for numeric comparisons in diffs.  Solver floats
#: can wiggle at the last bits across BLAS builds; MC counts and check
#: booleans are exact, so this only pads probability metrics.
_DIFF_TOLERANCE = 1e-9


def score_run(
    result: CorpusRunResult, *, metadata: Optional[CorpusMetadata] = None
) -> Dict[str, object]:
    """Build the scorecard dictionary for one corpus run."""
    cells: List[Dict[str, object]] = []
    checks_evaluated = 0
    checks_passed = 0
    explained_fallbacks = 0
    unexplained_fallbacks = 0
    families: Dict[str, Dict[str, int]] = {}
    for cell in result.cells:
        checks_evaluated += len(cell.checks)
        checks_passed += sum(1 for check in cell.checks if check.passed)
        # An iterative -> direct solver fallback is the capacity
        # solver's designed degradation path (the direct solve is
        # exact); on a cell whose checks all passed it is *explained*.
        # Structure fallbacks should never fire for capacity configs,
        # and any fallback on a failing/erroring cell needs a human.
        solver_fb = cell.fallbacks.get("solver_fallbacks", 0)
        structure_fb = cell.fallbacks.get("structure_fallbacks", 0)
        if cell.status == "pass":
            explained_fallbacks += solver_fb
            unexplained_fallbacks += structure_fb
        else:
            unexplained_fallbacks += solver_fb + structure_fb
        family = families.setdefault(
            cell.family, {"cells": 0, "pass": 0, "fail": 0, "error": 0}
        )
        family["cells"] += 1
        family[cell.status] += 1
        cells.append(
            {
                "case_id": cell.case_id,
                "family": cell.family,
                "status": cell.status,
                "checks": [
                    {
                        "name": check.name,
                        "passed": check.passed,
                        "details": json_safe(check.details),
                    }
                    for check in cell.checks
                ],
                "metrics": json_safe(cell.metrics),
                "fallbacks": dict(cell.fallbacks),
                "exceptions": dict(cell.exceptions),
                "seconds": cell.seconds,
            }
        )
    counts = result.counts()
    summary: Dict[str, object] = {
        "cells": len(result.cells),
        "pass": counts["pass"],
        "fail": counts["fail"],
        "error": counts["error"],
        "all_passed": counts["pass"] == len(result.cells),
        "checks_evaluated": checks_evaluated,
        "checks_passed": checks_passed,
        "explained_fallbacks": explained_fallbacks,
        "unexplained_fallbacks": unexplained_fallbacks,
        "families": families,
        "total_seconds": result.seconds,
        "cells_per_sec": result.cells_per_sec,
    }
    scorecard: Dict[str, object] = {
        "scorecard_version": SCORECARD_VERSION,
        "summary": summary,
        "cells": cells,
    }
    if metadata is not None:
        scorecard["corpus"] = metadata.to_dict()
    return scorecard


def scorecard_to_json(scorecard: Mapping[str, object]) -> str:
    """Canonical JSON text of a scorecard."""
    return dumps_canonical(json_safe(scorecard))


def load_scorecard(path: str) -> Dict[str, object]:
    """Read a scorecard JSON file."""
    with open(path) as handle:
        scorecard = json.load(handle)
    version = scorecard.get("scorecard_version")
    if version != SCORECARD_VERSION:
        raise ConfigurationError(
            f"unsupported scorecard_version {version!r}; this build reads "
            f"version {SCORECARD_VERSION}"
        )
    return scorecard


def _close(old: object, new: object) -> bool:
    if isinstance(old, bool) or isinstance(new, bool):
        return old is new or old == new
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        return abs(float(old) - float(new)) <= _DIFF_TOLERANCE
    return old == new


def _diff_value(path: str, old: object, new: object, out: List[str]) -> None:
    if isinstance(old, Mapping) and isinstance(new, Mapping):
        for key in sorted(set(old) | set(new)):
            if key in _TIMING_KEYS:
                continue
            if key not in old:
                out.append(f"{path}.{key}: added")
            elif key not in new:
                out.append(f"{path}.{key}: removed")
            else:
                _diff_value(f"{path}.{key}", old[key], new[key], out)
        return
    if isinstance(old, list) and isinstance(new, list):
        if len(old) != len(new):
            out.append(f"{path}: length {len(old)} -> {len(new)}")
            return
        for index, (old_item, new_item) in enumerate(zip(old, new)):
            _diff_value(f"{path}[{index}]", old_item, new_item, out)
        return
    if not _close(old, new):
        out.append(f"{path}: {old!r} -> {new!r}")


def diff_scorecards(
    golden: Mapping[str, object], candidate: Mapping[str, object]
) -> List[str]:
    """Human-readable list of behavioural differences between two
    scorecards (empty means conformant).  Cells are matched by
    ``case_id``; timing fields are ignored; numeric values compare at
    ``1e-9`` absolute tolerance."""
    differences: List[str] = []

    def by_id(scorecard: Mapping[str, object]) -> Dict[str, Mapping[str, object]]:
        return {cell["case_id"]: cell for cell in scorecard.get("cells", [])}

    old_cells, new_cells = by_id(golden), by_id(candidate)
    for case_id in sorted(set(old_cells) | set(new_cells)):
        if case_id not in new_cells:
            differences.append(f"cell {case_id}: missing from candidate")
        elif case_id not in old_cells:
            differences.append(f"cell {case_id}: not in golden")
        else:
            _diff_value(
                f"cell {case_id}", old_cells[case_id], new_cells[case_id],
                differences,
            )
    _diff_value(
        "summary",
        golden.get("summary", {}),
        candidate.get("summary", {}),
        differences,
    )
    return differences
