"""Experiment ``multiplane``: how conservative is the paper's
worst-case setting? (extension)

The paper's measure assumes the signal sits where only one plane's
footprints matter.  Off the centre line -- increasingly so at higher
latitudes -- the target is covered by several *independently degrading*
planes, and the constellation delivers the best of their results.
This experiment quantifies the gap: ``P(Y >= y)`` for the worst case
(1 plane) versus 2 and 3 covering planes.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analytic.capacity import CapacityModelConfig
from repro.analytic.multiplane import multi_plane_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.experiments.engine import SweepRunner
from repro.experiments.report import ExperimentResult

__all__ = ["run"]


def _multiplane_row(point) -> Dict[str, object]:
    """One (lambda, planes) cell.  Both schemes and all plane counts of
    a lambda share its capacity config; the presolved cache entry makes
    each ``multi_plane_distribution`` call reuse one solve."""
    params = EvaluationParams(
        signal_termination_rate=point["mu"],
        node_failure_rate_per_hour=point["lam"],
    )
    planes = point["planes"]
    stages = point["stages"]
    row = {"lambda": f"{point['lam']:.0e}", "planes": planes}
    oaq = multi_plane_distribution(
        params, Scheme.OAQ, covering_planes=planes, capacity_stages=stages
    )
    baq = multi_plane_distribution(
        params, Scheme.BAQ, covering_planes=planes, capacity_stages=stages
    )
    row["OAQ P(Y>=2)"] = oaq.at_least(QoSLevel.SEQUENTIAL_DUAL)
    row["OAQ P(Y>=3)"] = oaq.at_least(QoSLevel.SIMULTANEOUS_DUAL)
    row["BAQ P(Y>=2)"] = baq.at_least(QoSLevel.SEQUENTIAL_DUAL)
    return row


def run(
    *,
    lambdas: Sequence[float] = (1e-5, 5e-5, 1e-4),
    plane_counts: Sequence[int] = (1, 2, 3),
    mu: float = 0.2,
    stages: int = 16,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Tabulate the best-of-planes QoS measure."""
    headers = ["lambda", "planes", "OAQ P(Y>=2)", "OAQ P(Y>=3)", "BAQ P(Y>=2)"]
    points = []
    presolve = []
    for lam in lambdas:
        params = EvaluationParams(
            signal_termination_rate=mu, node_failure_rate_per_hour=lam
        )
        presolve.append((CapacityModelConfig.from_params(params), stages))
        for planes in plane_counts:
            points.append(
                {"lam": lam, "planes": planes, "mu": mu, "stages": stages}
            )
    return SweepRunner(n_jobs=n_jobs).run(
        experiment_id="multiplane",
        title="Best-of-planes QoS vs the paper's single-plane worst case",
        headers=headers,
        row_fn=_multiplane_row,
        points=points,
        presolve=presolve,
        notes=[
            "Extension: planes degrade independently (no shared spares), so "
            "a target covered by p planes receives max of p i.i.d. results.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
