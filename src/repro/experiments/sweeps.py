"""Experiments ``tau-sweep`` and ``mu-sweep``: the QoS measure as a
function of the deadline and of the mean signal duration.

The paper reports these two studies in prose only (end of Section 4.3):

* sweeping ``tau`` shows OAQ "achieves better QoS by taking full
  advantage of the time allowance";
* sweeping the mean signal duration shows OAQ "responsively treats a
  longer signal duration as the extended opportunity".

BAQ serves as the control: its level-3 probability is independent of
``mu``, and its gain with ``tau`` saturates as soon as the computation
reliably finishes (no waiting ever happens).

Both sweeps run on :class:`~repro.experiments.engine.SweepRunner`: the
capacity distribution ``P(k)`` depends on neither ``tau`` nor ``mu``,
so the whole grid shares **one** capacity solve (presolved through the
memoized :func:`~repro.analytic.capacity.capacity_distribution`, with
its topology preassembled so the solve takes the re-rate path), and
``n_jobs`` fans the remaining closed-form work out across processes.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analytic.capacity import CapacityModelConfig
from repro.core.config import EvaluationParams
from repro.core.framework import OAQFramework
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.experiments.engine import SweepRunner
from repro.experiments.report import ExperimentResult

__all__ = ["run_tau_sweep", "run_mu_sweep"]


def _qos_point_row(point) -> Dict[str, object]:
    """Shared per-point evaluation: both schemes' P(Y>=2) and P(Y>=3)
    at one ``(tau, mu, lambda, eta)`` setting.  Top-level so the
    process-pool path can pickle it."""
    params = EvaluationParams(
        deadline_minutes=point["tau"],
        signal_termination_rate=point["mu"],
        node_failure_rate_per_hour=point["lam"],
        deployment_threshold=point["threshold"],
    )
    framework = OAQFramework(params, capacity_stages=point["stages"])
    row = dict(point["label"])
    for scheme in (Scheme.OAQ, Scheme.BAQ):
        distribution = framework.qos_distribution(scheme)
        row[f"{scheme.name} P(Y>=2)"] = distribution.at_least(
            QoSLevel.SEQUENTIAL_DUAL
        )
        row[f"{scheme.name} P(Y>=3)"] = distribution.at_least(
            QoSLevel.SIMULTANEOUS_DUAL
        )
    return row


def _shared_capacity_key(lam, threshold, stages):
    params = EvaluationParams(
        node_failure_rate_per_hour=lam, deployment_threshold=threshold
    )
    return (CapacityModelConfig.from_params(params), stages)


def run_tau_sweep(
    *,
    taus: Sequence[float] = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0),
    lam: float = 5e-5,
    mu: float = 0.2,
    threshold: int = 10,
    stages: int = 24,
    n_jobs: int = 1,
) -> ExperimentResult:
    """QoS measure vs deadline ``tau``."""
    headers = ["tau", "OAQ P(Y>=2)", "BAQ P(Y>=2)", "OAQ P(Y>=3)", "BAQ P(Y>=3)"]
    points = [
        {
            "label": {"tau": tau},
            "tau": tau,
            "mu": mu,
            "lam": lam,
            "threshold": threshold,
            "stages": stages,
        }
        for tau in taus
    ]
    return SweepRunner(n_jobs=n_jobs).run(
        experiment_id="tau-sweep",
        title=f"QoS measure vs deadline tau (lambda={lam:.0e}, mu={mu})",
        headers=headers,
        row_fn=_qos_point_row,
        points=points,
        presolve=[_shared_capacity_key(lam, threshold, stages)],
        preassemble=[_shared_capacity_key(lam, threshold, stages)],
        notes=[
            "Paper claim: OAQ takes full advantage of the time allowance -- "
            "its curves keep rising with tau while BAQ's saturate.",
        ],
    )


def run_mu_sweep(
    *,
    mean_durations: Sequence[float] = (0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 12.0),
    lam: float = 5e-5,
    tau: float = 5.0,
    threshold: int = 10,
    stages: int = 24,
    n_jobs: int = 1,
) -> ExperimentResult:
    """QoS measure vs mean signal duration ``1/mu``."""
    headers = [
        "mean duration",
        "mu",
        "OAQ P(Y>=2)",
        "BAQ P(Y>=2)",
        "OAQ P(Y>=3)",
        "BAQ P(Y>=3)",
    ]
    points = [
        {
            "label": {"mean duration": mean, "mu": round(1.0 / mean, 4)},
            "tau": tau,
            "mu": 1.0 / mean,
            "lam": lam,
            "threshold": threshold,
            "stages": stages,
        }
        for mean in mean_durations
    ]
    return SweepRunner(n_jobs=n_jobs).run(
        experiment_id="mu-sweep",
        title=f"QoS measure vs mean signal duration (lambda={lam:.0e}, tau={tau})",
        headers=headers,
        row_fn=_qos_point_row,
        points=points,
        presolve=[_shared_capacity_key(lam, threshold, stages)],
        preassemble=[_shared_capacity_key(lam, threshold, stages)],
        notes=[
            "Paper claim: OAQ treats a longer signal as extended opportunity "
            "(rising curves); BAQ's level-3 probability is mu-invariant.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_tau_sweep().render())
    print()
    print(run_mu_sweep().render())


if __name__ == "__main__":  # pragma: no cover
    main()
