"""Experiment ``calibration``: fitting the unpublished replacement
latency against the paper's Figure 9 anchors.

The one free parameter of the reproduction is the launch-to-arrival
latency of a threshold-triggered replacement ground spare.  This
experiment sweeps it and scores each candidate against the four anchor
values the paper prints (OAQ/BAQ ``P(Y >= 2)`` at ``lambda`` 1e-5 and
1e-4), justifying the calibrated default quantitatively rather than by
fiat.
"""

from __future__ import annotations

from typing import Sequence

from repro.analytic.capacity import CapacityModelConfig, capacity_distribution
from repro.analytic.composition import compose
from repro.analytic.qos_model import conditional_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.experiments.report import ExperimentResult

__all__ = ["ANCHORS", "anchor_errors", "run"]

#: The paper's in-text Fig. 9 anchors: (lambda, scheme, P(Y>=2)).
ANCHORS = (
    (1e-5, Scheme.OAQ, 0.75),
    (1e-5, Scheme.BAQ, 0.33),
    (1e-4, Scheme.OAQ, 0.41),
    (1e-4, Scheme.BAQ, 0.04),
)


def _measure(lam: float, scheme: Scheme, latency_hours: float, stages: int) -> float:
    params = EvaluationParams(
        signal_termination_rate=0.2,
        node_failure_rate_per_hour=lam,
        deployment_threshold=10,
        replacement_latency_hours=latency_hours,
    )
    config = CapacityModelConfig.from_params(params)
    # No truncation here: long latencies push real mass below the
    # paper's k >= 9 floor and it must be scored, not renormalised
    # away.
    capacity = {
        k: p
        for k, p in capacity_distribution(config, stages=stages).items()
        if k >= 1
    }
    composed = compose(
        capacity,
        lambda k: conditional_distribution(
            params.constellation.plane_geometry(k), params, scheme
        ),
    )
    return composed.at_least(QoSLevel.SEQUENTIAL_DUAL)


def anchor_errors(latency_hours: float, *, stages: int = 16) -> dict:
    """Absolute error against each anchor for one latency candidate."""
    errors = {}
    for lam, scheme, target in ANCHORS:
        measured = _measure(lam, scheme, latency_hours, stages)
        errors[(lam, scheme)] = abs(measured - target)
    return errors


def run(
    *,
    latencies_hours: Sequence[float] = (24.0, 72.0, 168.0, 336.0, 720.0),
    stages: int = 16,
) -> ExperimentResult:
    """Score each latency candidate against the Fig. 9 anchors."""
    headers = ["latency (h)"] + [
        f"|err| {scheme.name}@{lam:.0e}" for lam, scheme, _ in ANCHORS
    ] + ["max |err|"]
    rows = []
    for latency in latencies_hours:
        errors = anchor_errors(latency, stages=stages)
        row = {"latency (h)": latency}
        for lam, scheme, _ in ANCHORS:
            row[f"|err| {scheme.name}@{lam:.0e}"] = errors[(lam, scheme)]
        row["max |err|"] = max(errors.values())
        rows.append(row)
    return ExperimentResult(
        experiment_id="calibration",
        title="Replacement-latency calibration against the Fig. 9 anchors",
        headers=headers,
        rows=rows,
        notes=[
            "The anchor fit is nearly flat for latencies up to ~170 h and "
            "degrades beyond; within the flat region, 168 h (the default) "
            "is the value that also makes Fig. 7's P(eta-1) curve visibly "
            "non-zero at high lambda, as printed in the paper.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
