"""Experiment ``table1``: QoS levels vs geometric properties
(paper Table 1).

For each orbital-plane capacity ``k`` of interest the table shows the
geometric orientation indicator ``I[k]`` and which QoS levels are
achievable -- exactly the paper's two-row table, expanded per ``k`` so
the ``I[k]`` transition at ``k = 11`` is visible.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.config import REFERENCE_CONSTELLATION, ConstellationConfig
from repro.core.qos import QoSLevel
from repro.experiments.report import ExperimentResult

__all__ = ["run"]


def run(
    constellation: ConstellationConfig = REFERENCE_CONSTELLATION,
    capacities: Iterable[int] = range(9, 15),
) -> ExperimentResult:
    """Regenerate Table 1 for the given capacities."""
    headers = [
        "k",
        "I[k]",
        "Y=3 simultaneous dual",
        "Y=2 sequential dual",
        "Y=1 single",
        "Y=0 missing",
    ]
    rows = []
    for k in capacities:
        geometry = constellation.plane_geometry(k)
        achievable = set(QoSLevel.achievable_levels(geometry.overlapping))

        def mark(level: QoSLevel) -> str:
            return "x" if level in achievable else ""

        rows.append(
            {
                "k": k,
                "I[k]": geometry.indicator,
                "Y=3 simultaneous dual": mark(QoSLevel.SIMULTANEOUS_DUAL),
                "Y=2 sequential dual": mark(QoSLevel.SEQUENTIAL_DUAL),
                "Y=1 single": mark(QoSLevel.SINGLE),
                "Y=0 missing": mark(QoSLevel.MISSED),
            }
        )
    return ExperimentResult(
        experiment_id="table1",
        title="QoS levels vs geometric properties (paper Table 1)",
        headers=headers,
        rows=rows,
        notes=[
            "I[k]=1 (overlap) admits levels {3, 1}; I[k]=0 (underlap) admits "
            "{2, 1, 0}; the transition falls below k=11 as in Section 4.2.1.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
