"""Experiment harness: one module per table/figure of the paper's
evaluation plus the reproduction's own validation and ablation studies.

Run everything with ``python -m repro.experiments``; each module also
has its own ``main()``.
"""

# NOTE: corpus_exp and faults_exp are intentionally absent here --
# they import repro.scenarios / repro.faults, which import back into
# repro.experiments (scorer -> report, campaign -> engine), so pulling
# them in at package-import time would be circular.  Import them
# explicitly (``from repro.experiments import corpus_exp``).
from repro.experiments import (
    aging_exp,
    calibration_exp,
    engine,
    fig7,
    fig8,
    fig9,
    geolocation_exp,
    geometry_exp,
    montecarlo_exp,
    multiplane_exp,
    orbits_exp,
    protocol_exp,
    robustness_exp,
    san_ablation,
    scaled_capacity_exp,
    sweeps,
    table1,
    text_results,
)
from repro.experiments.engine import SweepRunner, evaluate_grid
from repro.experiments.report import ExperimentResult, format_table

__all__ = [
    "ExperimentResult",
    "SweepRunner",
    "aging_exp",
    "calibration_exp",
    "engine",
    "evaluate_grid",
    "fig7",
    "fig8",
    "fig9",
    "format_table",
    "geolocation_exp",
    "geometry_exp",
    "montecarlo_exp",
    "multiplane_exp",
    "orbits_exp",
    "protocol_exp",
    "robustness_exp",
    "san_ablation",
    "scaled_capacity_exp",
    "sweeps",
    "table1",
    "text_results",
]
