"""Plain-text line charts for the experiment harness.

The paper's evaluation is presented as figures; this module renders the
regenerated series as ASCII charts so ``python -m repro.experiments
--plots`` shows the curve *shapes* (who wins, where the crossovers are)
directly in a terminal or CI log, with no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["line_chart"]

#: Symbols assigned to series, in order.
_MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi == lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(position * (cells - 1)))))


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    *,
    title: str = "",
    width: int = 60,
    height: int = 16,
    y_range: "Tuple[float, float] | None" = None,
) -> str:
    """Render named ``(x, y)`` series as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping of series name to its points.  All series share the
        axes; each gets a marker from a fixed cycle.
    y_range:
        Explicit ``(lo, hi)`` for the y axis; inferred when None.
    """
    if not series:
        raise ConfigurationError("line_chart needs at least one series")
    if width < 10 or height < 4:
        raise ConfigurationError("chart must be at least 10x4 cells")
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ConfigurationError("line_chart needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    if y_range is None:
        y_lo, y_hi = min(ys), max(ys)
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
    else:
        y_lo, y_hi = y_range
        if y_hi <= y_lo:
            raise ConfigurationError(f"invalid y_range {y_range}")

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            column = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            current = grid[row][column]
            grid[row][column] = "*" if current not in (" ", marker) else marker

    lines = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_hi:.2f}"), len(f"{y_lo:.2f}"))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_hi:.2f}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{y_lo:.2f}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}|")
    axis = f"{' ' * label_width} +{'-' * width}+"
    lines.append(axis)
    x_left = f"{x_lo:.6g}"
    x_right = f"{x_hi:.6g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(
        f"{' ' * label_width}  {x_left}{' ' * max(1, padding)}{x_right}"
    )
    lines.append(f"{' ' * label_width}  legend: {'   '.join(legend)}")
    return "\n".join(lines)
