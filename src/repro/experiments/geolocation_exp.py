"""Experiment ``geoloc``: geolocation accuracy behind the QoS levels
(the Section 3.1 premise).

Runs the real estimation stack (orbits -> Doppler measurements ->
iterative WLS / sequential localization) for the three coverage
patterns and shows the accuracy ordering that justifies the QoS
spectrum: simultaneous dual < sequential dual < single coverage error.
"""

from __future__ import annotations

from typing import Optional

from repro.core.qos import QoSLevel
from repro.experiments.report import ExperimentResult
from repro.simulation.scenarios import CoverageAccuracyScenario

__all__ = ["run"]


def run(
    *,
    trials: int = 12,
    measurements_per_pass: int = 6,
    active_satellites: int = 12,
    seed: Optional[int] = 99,
) -> ExperimentResult:
    """Median true error and mean estimated error per coverage level."""
    scenario = CoverageAccuracyScenario(
        active_satellites=active_satellites,
        measurements_per_pass=measurements_per_pass,
    )
    results = scenario.run_all_levels(trials=trials, seed=seed)
    headers = ["QoS level", "coverage", "median error (km)", "estimated 1-sigma (km)"]
    labels = {
        QoSLevel.SINGLE: "single pass",
        QoSLevel.SEQUENTIAL_DUAL: "sequential dual",
        QoSLevel.SIMULTANEOUS_DUAL: "simultaneous dual",
    }
    rows = []
    for level in (
        QoSLevel.SINGLE,
        QoSLevel.SEQUENTIAL_DUAL,
        QoSLevel.SIMULTANEOUS_DUAL,
    ):
        accuracy = results[level]
        rows.append(
            {
                "QoS level": int(level),
                "coverage": labels[level],
                "median error (km)": accuracy.median_error_km,
                "estimated 1-sigma (km)": accuracy.mean_estimated_error_km,
            }
        )
    return ExperimentResult(
        experiment_id="geoloc",
        title=(
            "Geolocation accuracy by coverage pattern "
            f"({measurements_per_pass} Doppler samples/pass, {trials} trials)"
        ),
        headers=headers,
        rows=rows,
        notes=[
            "Both dual-coverage forms improve on single coverage by orders "
            "of magnitude -- the Section 3.1 premise.  (Between levels 2 "
            "and 3 the accuracy ranking depends on geometry; the paper "
            "ranks level 3 highest because it needs no waiting and "
            "resolves the ambiguity instantly.)",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
