"""Memoized + parallel experiment evaluation engine.

Every sweep/figure experiment is a grid of independent points, and the
expensive part of each point -- the SAN capacity solve -- depends only
on ``(CapacityModelConfig, stages)``.  :class:`SweepRunner` exploits
both facts:

* **Shared solves** named in ``presolve`` are computed once in the
  parent process through the memoized
  :func:`~repro.analytic.capacity.capacity_distribution` before any
  point is evaluated, so a ``tau``/``mu`` sweep performs exactly one
  capacity solve for its whole grid (asserted by the engine tests via
  the cache counters).
* **Fan-out**: with ``n_jobs > 1`` the grid is evaluated through the
  affinity-sharded campaign orchestrator
  (:class:`repro.campaign.CampaignRunner`): points are grouped into
  chunks by an optional ``affinity`` key, each chunk is pickled and
  submitted *once* (not once per point), executes consecutively on one
  worker seeded with the parent's solved-distribution cache, and is
  state-isolated at its boundaries.  ``n_jobs=1`` (the default) runs
  sequentially in-process with no pool overhead, and ``n_jobs=-1``
  uses one worker per CPU.
* **Determinism**: rows come back in grid order regardless of worker
  completion order, and chunk-level state isolation makes every row a
  pure function of its chunk, so parallel and sequential runs produce
  identical :class:`~repro.experiments.report.ExperimentResult`
  tables -- including across checkpoint/resume (pass ``journal=``) and
  worker-loss retries.  See ``docs/CAMPAIGN.md``.

* **Shared structure**: configs named in ``preassemble`` have their
  capacity *topology* assembled once up front
  (:func:`~repro.analytic.capacity.assemble_capacity_topology`); the
  per-point solves then re-rate that structure instead of regenerating
  the state space, and warm-start each steady-state solve from the
  previous point's solution.

Per-stage wall-clock timings (``capacity_presolve``, ``rows``,
``total``, plus the capacity pipeline's ``assemble``/``refine``/
``quotient``/``rerate``/``solve`` deltas) are recorded into
``ExperimentResult.timings`` so the benchmarks can attribute speedups,
a solve-cache statistics snapshot lands in
``ExperimentResult.metadata["cache_stats"]``, and the run-level deltas
of the capacity solver counters (``structure_fallbacks``,
``solver_fallbacks``, solve-method counts) land in
``ExperimentResult.metadata["solver_stats"]``.  See
``docs/SAN_ENGINE.md`` for the user guide.
"""

from __future__ import annotations

import math
import os
import time
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.analytic.capacity import (
    CapacityModelConfig,
    assemble_capacity_topology,
    capacity_distribution,
    capacity_solver_stats,
    capacity_stage_timings,
    seed_capacity_cache,
)
from repro.analytic.solve_cache import cache_stats
from repro.campaign import CampaignResult, CampaignRunner
from repro.errors import ConfigurationError
from repro.experiments.report import ExperimentResult
from repro.simulation.batch import batch_stage_timings
from repro.simulation.vector import vector_batch_stats

__all__ = ["SweepRunner", "evaluate_grid"]

#: A sweep point is a plain mapping of parameter name -> value; it must
#: be picklable for the process-pool path.
Point = Mapping[str, object]
RowFn = Callable[[Point], Dict[str, object]]


@contextmanager
def _stage(timings: Dict[str, float], name: str):
    start = time.perf_counter()
    try:
        yield
    finally:
        timings[name] = timings.get(name, 0.0) + time.perf_counter() - start


def _seed_worker(entries) -> None:
    """Install the parent's solved ``P(k)`` entries into a worker's
    capacity cache (kept for API compatibility; the campaign
    orchestrator's initializer does this itself)."""
    seed_capacity_cache(entries)


class SweepRunner:
    """Evaluate experiment grids with shared solves and optional
    affinity-sharded process-pool parallelism.

    Parameters
    ----------
    n_jobs:
        ``1`` evaluates sequentially in-process (no pool, no pickling);
        ``> 1`` fans affinity chunks out over that many worker
        processes; ``-1`` means one worker per available CPU.
    journal:
        Optional path of a chunk-granular JSONL checkpoint journal
        (see :mod:`repro.campaign`).  Setting it routes even
        ``n_jobs=1`` runs through the orchestrator so they checkpoint
        and resume; an existing journal must fingerprint-match the
        grid.
    chunk_size:
        Optional cap on points per chunk.  Default: unlimited when an
        ``affinity`` key is supplied to :meth:`map_rows` (one chunk per
        affinity group -- the bit-stable plan), else
        ``ceil(len(points) / workers)`` contiguous blocks.
    steal:
        Let idle workers speculatively re-execute straggler chunks.
    retries:
        Re-attempts (from a fresh state reset) for a chunk whose
        evaluator raised, before the exception propagates.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        *,
        journal: Optional[str] = None,
        chunk_size: Optional[int] = None,
        steal: bool = True,
        retries: int = 1,
    ):
        if n_jobs == -1:
            n_jobs = os.cpu_count() or 1
        if not isinstance(n_jobs, int) or n_jobs < 1:
            raise ConfigurationError(
                f"n_jobs must be a positive int or -1, got {n_jobs!r}"
            )
        self.n_jobs = n_jobs
        self.journal = journal
        self.chunk_size = chunk_size
        self.steal = steal
        self.retries = retries
        #: The :class:`repro.campaign.CampaignResult` of the last
        #: :meth:`map_rows` call that went through the orchestrator
        #: (``None`` after a plain sequential pass).
        self.last_campaign: Optional[CampaignResult] = None

    # ------------------------------------------------------------------
    # Shared capacity solves
    # ------------------------------------------------------------------
    @staticmethod
    def preassemble_capacity(
        keys: Iterable[Tuple[CapacityModelConfig, int]],
    ) -> int:
        """Assemble each distinct capacity *topology* once (memoized).

        Rate sweeps share one assembled structure across all their
        points; assembling it up front means every point -- including
        the first -- goes through the cheap re-rate path.  Configs that
        differ only in rate parameters collapse onto one topology key,
        so passing every grid config is fine.  Returns the number of
        distinct ``(config, stages)`` keys passed (not topologies).
        """
        distinct = list(dict.fromkeys(keys))
        for config, stages in distinct:
            assemble_capacity_topology(config, stages=stages)
        return len(distinct)

    @staticmethod
    def presolve_capacity(
        keys: Iterable[Tuple[CapacityModelConfig, int]],
    ) -> int:
        """Solve each distinct ``(config, stages)`` once (memoized).

        Returns the number of distinct keys.  Call this with the
        configs that are shared by *multiple* grid points; per-point
        configs are better solved inside the point evaluation (in
        parallel mode that keeps them on the workers).
        """
        distinct = list(dict.fromkeys(keys))
        for config, stages in distinct:
            capacity_distribution(config, stages=stages)
        return len(distinct)

    # ------------------------------------------------------------------
    # Grid evaluation
    # ------------------------------------------------------------------
    def map_rows(
        self,
        row_fn: RowFn,
        points: Sequence[Point],
        *,
        affinity: Optional[Callable[[Point], object]] = None,
    ) -> List[Dict[str, object]]:
        """``[row_fn(p) for p in points]``, possibly in parallel, with
        the sequential ordering guaranteed either way.

        ``affinity`` maps a point to a hashable key; points sharing a
        key execute consecutively on one worker (in grid order), so
        cells sharing a SAN topology take the assemble-cache /
        warm-start / re-rate fast path instead of rebuilding per point.
        """
        points = list(points)
        self.last_campaign = None
        if not points:
            return []
        if (self.n_jobs == 1 or len(points) == 1) and self.journal is None:
            return [dict(row_fn(point)) for point in points]

        chunk_size = self.chunk_size
        if chunk_size is None and affinity is None:
            # No locality structure declared: contiguous blocks, one
            # per worker, keep submission overhead at O(workers).
            workers = min(self.n_jobs, len(points))
            chunk_size = math.ceil(len(points) / workers)
        runner = CampaignRunner(
            self.n_jobs,
            journal=self.journal,
            max_chunk_size=chunk_size,
            steal=self.steal,
            retries=self.retries,
        )
        campaign = runner.run(row_fn, points, affinity=affinity)
        self.last_campaign = campaign
        return [dict(row) for row in campaign.rows]

    def run(
        self,
        *,
        experiment_id: str,
        title: str,
        headers: Sequence[str],
        row_fn: RowFn,
        points: Sequence[Point],
        notes: Sequence[str] = (),
        presolve: Iterable[Tuple[CapacityModelConfig, int]] = (),
        preassemble: Iterable[Tuple[CapacityModelConfig, int]] = (),
        affinity: Optional[Callable[[Point], object]] = None,
    ) -> ExperimentResult:
        """Presolve shared configs, evaluate the grid, and package the
        rows -- with stage timings -- as an :class:`ExperimentResult`.

        ``preassemble`` names configs whose *topology* should be
        assembled before solving starts (rate sweeps: pass one config
        per distinct topology).  The assembled structure is then
        re-rated per point instead of regenerated.  ``affinity`` is
        forwarded to :meth:`map_rows` for campaign runs.

        The ``assemble``/``refine``/``quotient``/``rerate``/``solve``
        timings are deltas of the
        capacity module's stage accumulators across the run, and the
        ``batch_template``/``batch_replicate``/``batch_run``/
        ``batch_vector``/``batch_vector_fallback`` timings are
        deltas of the batched-replication engine's accumulators (see
        :func:`repro.simulation.batch.batch_stage_timings`); the
        vector engine's counter deltas (including the divergence-mask
        fallback fraction) land in
        ``ExperimentResult.metadata["vector_stats"]``.  Campaign runs
        merge each pool worker's per-chunk deltas of the same
        accumulators into these timings and counters, so parallel runs
        attribute stage work instead of undercounting it, and record
        the orchestrator's scheduling statistics (chunks, resumed,
        stolen, retried, pool restarts) in
        ``ExperimentResult.metadata["campaign"]``.
        """
        timings: Dict[str, float] = {}
        before = capacity_stage_timings()
        batch_before = batch_stage_timings()
        vector_before = vector_batch_stats()
        solver_before = capacity_solver_stats()
        with _stage(timings, "total"):
            with _stage(timings, "capacity_presolve"):
                self.preassemble_capacity(preassemble)
                self.presolve_capacity(presolve)
            with _stage(timings, "rows"):
                rows = self.map_rows(row_fn, points, affinity=affinity)
        after = capacity_stage_timings()
        batch_after = batch_stage_timings()
        campaign = self.last_campaign
        worker_stages = (
            campaign.worker_stage_timings() if campaign is not None else {}
        )
        worker_batch = (
            campaign.worker_batch_timings() if campaign is not None else {}
        )
        for stage in ("assemble", "refine", "quotient", "rerate", "solve"):
            timings[stage] = (
                after.get(stage, 0.0)
                - before.get(stage, 0.0)
                + worker_stages.get(stage, 0.0)
            )
        for stage in ("template", "replicate", "run", "vector", "vector_fallback"):
            timings[f"batch_{stage}"] = (
                batch_after.get(stage, 0.0)
                - batch_before.get(stage, 0.0)
                + worker_batch.get(stage, 0.0)
            )
        solver_after = capacity_solver_stats()
        vector_after = vector_batch_stats()
        worker_solver = (
            campaign.worker_counter_sums("solver_stats")
            if campaign is not None
            else {}
        )
        metadata: Dict[str, object] = {
            # Run-level deltas of the capacity solver counters --
            # notably ``structure_fallbacks`` / ``solver_fallbacks``,
            # which the optimize experiment additionally records
            # per-cell.  Campaign runs add the worker-side deltas, so
            # the totals hold at any n_jobs.
            "solver_stats": {
                key: solver_after.get(key, 0)
                - solver_before.get(key, 0)
                + worker_solver.get(key, 0)
                for key in solver_after
            },
            "cache_stats": {
                name: {
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "evictions": stats.evictions,
                    "size": stats.size,
                    "maxsize": stats.maxsize,
                    "hit_rate": stats.hit_rate,
                }
                for name, stats in cache_stats().items()
            },
        }
        # Vector-engine counter deltas (calls / replications / rows
        # shunted to the scalar oracle) with the run-level fallback
        # fraction; worker-side deltas included for campaign runs.
        worker_vector = (
            campaign.worker_counter_sums("vector_stats")
            if campaign is not None
            else {}
        )
        vector_delta = {
            key: vector_after.get(key, 0)
            - vector_before.get(key, 0)
            + worker_vector.get(key, 0)
            for key in ("calls", "replications", "fallbacks")
        }
        vector_delta["fallback_fraction"] = (
            vector_delta["fallbacks"] / vector_delta["replications"]
            if vector_delta["replications"]
            else 0.0
        )
        metadata["vector_stats"] = vector_delta
        if campaign is not None:
            metadata["campaign"] = {
                **campaign.stats,
                "fingerprint": campaign.fingerprint,
            }
        return ExperimentResult(
            experiment_id=experiment_id,
            title=title,
            headers=list(headers),
            rows=rows,
            notes=list(notes),
            timings=timings,
            metadata=metadata,
        )


def evaluate_grid(
    row_fn: RowFn,
    points: Sequence[Point],
    *,
    n_jobs: int = 1,
    presolve: Iterable[Tuple[CapacityModelConfig, int]] = (),
) -> List[Dict[str, object]]:
    """Functional shorthand: presolve shared configs, then map the grid
    through a :class:`SweepRunner`."""
    runner = SweepRunner(n_jobs=n_jobs)
    runner.presolve_capacity(presolve)
    return runner.map_rows(row_fn, points)
