"""Experiment ``protocol``: behavioural properties of the OAQ
coordination protocol (paper Figures 3-4).

Runs batches of full protocol scenarios and reports the properties the
paper argues for:

* the alert is always sent within the deadline when a signal is
  detected (timeliness guarantee);
* the coordination chain never exceeds the Eq. (2) bound ``M[k]``;
* with the done-propagation ("backward messaging") variant the alert
  survives a fail-silent successor; with successor-responsibility it
  does not.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import EvaluationParams
from repro.core.opportunity import max_chain_length
from repro.core.schemes import Scheme
from repro.experiments.report import ExperimentResult
from repro.protocol.satellite import MessagingVariant
from repro.simulation.batch import ScenarioTemplate

__all__ = ["run"]


def _batch(
    geometry,
    params,
    *,
    variant: MessagingVariant,
    fail_successor: bool,
    samples: int,
    rng: np.random.Generator,
):
    # One template per configuration; each sample replays it.  The
    # per-sample seed chain (and therefore every outcome) is identical
    # to the per-sample CenterlineScenario construction this replaced.
    template = ScenarioTemplate(
        geometry, params, scheme=Scheme.OAQ, variant=variant, record_log=False
    )
    single_coverage = geometry.single_coverage_length
    detected = 0
    timely = 0
    max_timely_chain = 0
    delivered = 0
    for _ in range(samples):
        seed = int(rng.integers(0, 2**63 - 1))
        fail_silent = None
        if fail_successor:
            # Fail the *detector's* successor: for a signal starting in
            # the coverage gap the first (detecting) visitor is S2, so
            # the successor under test is S3.  The probe draw replays
            # the scenario's own onset draw for this seed.
            probe = np.random.default_rng(seed)
            onset = float(probe.uniform(0.0, geometry.l1))
            covered = geometry.overlapping or onset < single_coverage
            fail_silent = {("S2" if covered else "S3"): 0.0}
        outcome = template.replicate(seed, fail_silent=fail_silent).run()
        if outcome.detection_time is not None:
            detected += 1
            if outcome.official_alert is not None:
                delivered += 1
                if outcome.alert_latency <= params.tau + 1e-9:
                    timely += 1
                    max_timely_chain = max(
                        max_timely_chain, outcome.chain_length
                    )
    return detected, delivered, timely, max_timely_chain


def run(
    *,
    samples: int = 400,
    capacity: int = 9,
    seed: Optional[int] = 4242,
) -> ExperimentResult:
    """Protocol-property statistics over random signals (underlapping
    plane, where the coordination chain actually forms)."""
    params = EvaluationParams(signal_termination_rate=0.2)
    geometry = params.constellation.plane_geometry(capacity)
    bound = max_chain_length(geometry, params)
    rng = np.random.default_rng(seed)
    headers = [
        "configuration",
        "detected",
        "alerts delivered",
        "timely (<= tau)",
        "max timely chain",
        "chain bound M[k]",
    ]
    rows = []
    for label, variant, fail in (
        ("done-propagation, healthy", MessagingVariant.DONE_PROPAGATION, False),
        ("done-propagation, successor fail-silent", MessagingVariant.DONE_PROPAGATION, True),
        (
            "successor-responsibility, healthy",
            MessagingVariant.SUCCESSOR_RESPONSIBILITY,
            False,
        ),
        (
            "successor-responsibility, successor fail-silent",
            MessagingVariant.SUCCESSOR_RESPONSIBILITY,
            True,
        ),
    ):
        detected, delivered, timely, max_chain = _batch(
            geometry,
            params,
            variant=variant,
            fail_successor=fail,
            samples=samples,
            rng=rng,
        )
        rows.append(
            {
                "configuration": label,
                "detected": detected,
                "alerts delivered": delivered,
                "timely (<= tau)": timely,
                "max timely chain": max_chain,
                "chain bound M[k]": bound,
            }
        )
    return ExperimentResult(
        experiment_id="protocol",
        title=f"OAQ protocol properties (k={capacity}, {samples} signals/case)",
        headers=headers,
        rows=rows,
        notes=[
            "Done-propagation keeps delivered == detected -- and timely -- "
            "even with a fail-silent successor (Figure 4).  Successor-"
            "responsibility loses those alerts under failure, and even "
            "healthy it delivers late whenever the invited successor's "
            "footprint arrives after the deadline: the Section 3.2 "
            "trade-off, quantified.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
