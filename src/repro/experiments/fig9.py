"""Experiment ``fig9``: the QoS measure ``P(Y >= y)`` as a function of
``lambda`` (paper Figure 9: ``tau = 5``, ``mu = 0.2``,
``phi = 30000`` hours; OAQ vs BAQ for ``y in {1, 2, 3}``).

Anchor values from the paper's text: at ``lambda = 1e-5`` OAQ achieves
``P(Y >= 2) = 0.75`` vs BAQ ``0.33``; at ``lambda = 1e-4`` OAQ ``0.41``
vs BAQ ``0.04``; ``P(Y >= 1) = 1`` for both schemes over the whole
domain.  Those anchors are only reproduced with the deployment
threshold at ``eta = 10`` (the paper states ``eta`` explicitly for
Figures 7 and 8 but not 9), which is the default here.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.config import EvaluationParams
from repro.core.framework import OAQFramework
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.experiments.engine import SweepRunner
from repro.experiments.fig7 import DEFAULT_LAMBDA_GRID
from repro.experiments.report import ExperimentResult

__all__ = ["run"]

_LEVELS = (QoSLevel.SINGLE, QoSLevel.SEQUENTIAL_DUAL, QoSLevel.SIMULTANEOUS_DUAL)


def _fig9_row(point) -> Dict[str, object]:
    """One lambda's six curve values (both schemes, three levels)."""
    params = EvaluationParams(
        deadline_minutes=point["deadline"],
        signal_termination_rate=point["mu"],
        node_failure_rate_per_hour=point["lam"],
        deployment_threshold=point["threshold"],
    )
    framework = OAQFramework(params, capacity_stages=point["stages"])
    row = {"lambda": f"{point['lam']:.0e}"}
    for scheme in (Scheme.OAQ, Scheme.BAQ):
        distribution = framework.qos_distribution(scheme)
        for level in _LEVELS:
            row[f"{scheme.name} P(Y>={int(level)})"] = distribution.at_least(
                level
            )
    return row


def run(
    *,
    lambda_grid: Sequence[float] = DEFAULT_LAMBDA_GRID,
    mu: float = 0.2,
    deadline: float = 5.0,
    threshold: int = 10,
    stages: int = 24,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Figure 9's six curves."""
    headers = ["lambda"]
    for scheme in (Scheme.OAQ, Scheme.BAQ):
        for level in _LEVELS:
            headers.append(f"{scheme.name} P(Y>={int(level)})")
    points = [
        {
            "lam": lam,
            "mu": mu,
            "deadline": deadline,
            "threshold": threshold,
            "stages": stages,
        }
        for lam in lambda_grid
    ]
    return SweepRunner(n_jobs=n_jobs).run(
        experiment_id="fig9",
        title=(
            f"P(Y >= y) as a function of lambda (tau={deadline}, mu={mu}, "
            "phi=30000 hrs)"
        ),
        headers=headers,
        row_fn=_fig9_row,
        points=points,
        notes=[
            "Paper anchors: OAQ P(Y>=2): 0.75 @1e-5 -> 0.41 @1e-4; "
            "BAQ: 0.33 -> 0.04; P(Y>=1)=1 for both schemes.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
