"""Experiment ``aging``: constellation aging between scheduled
deployments (extension; the paper evaluates steady state only).

Shows the time-dependent capacity distribution ``P(k at t)`` of a
freshly deployed plane across one scheduled-deployment period: spares
absorb the first failures, the plane then degrades toward the
threshold where the sustain policy pins it, and the scheduled restore
(smoothed by the phase-type approximation) pulls mass back to full
capacity.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.analytic.capacity import CapacityModelConfig, capacity_transient
from repro.experiments.report import ExperimentResult

__all__ = ["run"]


def run(
    *,
    lam: float = 1e-4,
    threshold: int = 10,
    times_hours: Sequence[float] = (0.0, 1000.0, 3000.0, 6000.0, 12000.0, 24000.0),
    stages: int = 16,
) -> ExperimentResult:
    """Tabulate ``P(k at t)`` over a deployment period."""
    config = CapacityModelConfig(
        failure_rate_per_hour=lam, threshold=threshold
    )
    start = time.perf_counter()
    transient = capacity_transient(config, times_hours, stages=stages)
    transient_delta = time.perf_counter() - start
    capacities = list(range(8, 15))
    headers = ["t (hours)"] + [f"P(K={k})" for k in capacities]
    rows = []
    for t in times_hours:
        row = {"t (hours)": f"{t:.0f}"}
        for k in capacities:
            row[f"P(K={k})"] = transient[float(t)].get(k, 0.0)
        rows.append(row)
    return ExperimentResult(
        experiment_id="aging",
        title=(
            "Constellation aging after deployment "
            f"(lambda={lam:.0e}, eta={threshold})"
        ),
        headers=headers,
        rows=rows,
        notes=[
            "Extension beyond the paper's steady-state evaluation: the "
            "transient P(k at t) of a freshly deployed plane, solved by "
            "incremental uniformisation on the phase-type-unfolded SAN "
            "(each time point advances the state vector from the "
            "previous one).",
        ],
        timings={"transient": transient_delta},
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
