"""Experiment ``orbits``: the constellation facts of Section 2 /
Figure 1, measured from the orbital-mechanics substrate.

* the measured coverage time equals the published ``Tc = 9`` minutes;
* the measured revisit time matches ``Tr[k] = theta / k``;
* 98 active satellites give full Earth coverage;
* the overlapped-coverage fraction grows from the equator to the poles
  (so ~30 degrees latitude, centre line, is a conservative setting).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.report import ExperimentResult
from repro.orbits import (
    GeodeticPoint,
    build_reference_constellation,
    coverage_series,
    latitude_overlap_profile,
    measured_coverage_time_minutes,
    measured_revisit_time_minutes,
)

__all__ = ["run_constants", "run_latitude_profile"]


def run_constants(*, capacities: Sequence[int] = (14, 12, 10)) -> ExperimentResult:
    """Measured vs published Tc and Tr[k]."""
    headers = ["quantity", "published", "measured"]
    rows = []
    constellation = build_reference_constellation()
    equator = GeodeticPoint.from_degrees(0.0, 0.0)
    tc = measured_coverage_time_minutes(
        constellation.planes[0], constellation.footprint.half_angle, equator
    )
    rows.append({"quantity": "coverage time Tc (min)", "published": 9.0, "measured": tc})
    for k in capacities:
        fresh = build_reference_constellation()
        plane = fresh.planes[0]
        losses = plane.active_count + plane.spare_count - k
        plane.fail_satellites(losses)
        tr = measured_revisit_time_minutes(plane, equator)
        rows.append(
            {
                "quantity": f"revisit time Tr[{k}] (min)",
                "published": 90.0 / k,
                "measured": tr,
            }
        )
    return ExperimentResult(
        experiment_id="orbits",
        title="Reference-constellation constants: published vs measured",
        headers=headers,
        rows=rows,
    )


def run_latitude_profile(
    *,
    latitudes_deg: Sequence[float] = (0.0, 15.0, 30.0, 45.0, 60.0, 75.0),
    duration_s: float = 5400.0,
    step_s: float = 60.0,
) -> ExperimentResult:
    """Overlapped-coverage fraction vs latitude (Figure 1 discussion)."""
    constellation = build_reference_constellation()
    profile = latitude_overlap_profile(
        constellation, latitudes_deg, duration_s=duration_s, step_s=step_s
    )
    any_coverage = {}
    for lat in latitudes_deg:
        series = coverage_series(
            constellation,
            GeodeticPoint.from_degrees(lat, 20.0),
            duration_s,
            step_s=step_s,
        )
        any_coverage[lat] = series.fraction_at_least(1)
    headers = ["latitude (deg)", "covered fraction", "overlapped fraction"]
    rows = [
        {
            "latitude (deg)": lat,
            "covered fraction": any_coverage[lat],
            "overlapped fraction": profile[lat],
        }
        for lat in latitudes_deg
    ]
    return ExperimentResult(
        experiment_id="orbits-latitude",
        title="Coverage vs latitude for the full 98-satellite constellation",
        headers=headers,
        rows=rows,
        notes=[
            "Paper: full Earth coverage at 98 satellites; the overlapped "
            "fraction is lowest near the equator and highest near the poles.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_constants().render())
    print()
    print(run_latitude_profile().render())


if __name__ == "__main__":  # pragma: no cover
    main()
