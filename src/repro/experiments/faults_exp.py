"""Experiment ``faults``: graceful degradation under injected faults.

Runs a seeded fault-injection campaign (see :mod:`repro.faults`) over a
battery of fault plans on an underlapping plane and reports, per
(plan, scheme) cell, the empirical achieved-QoS-level distribution with
Wilson confidence bounds.  Where a closed-form reference exists (the
fault-free plan, and the all-successors-fail-silent plan, which
degrades OAQ to the BAQ conditional distribution) the analytic
``P(Y >= 2)`` is shown alongside so the table doubles as a validation
report.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.analytic.qos_model import conditional_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.experiments.report import ExperimentResult
from repro.faults.campaign import Campaign
from repro.faults.plan import FaultPlan
from repro.faults.validation import fail_silent_reference

__all__ = ["plan_battery", "run"]


def plan_battery() -> "list[FaultPlan]":
    """The battery of fault plans exercised by the experiment.

    The ``stale-view`` and ``fresh-view`` plans inject the *same*
    single-successor failure; they differ only in how quickly the
    membership view learns of it (never versus immediately), isolating
    the value of failure detection for the coordination chain.
    """
    return [
        FaultPlan.fault_free(),
        FaultPlan.successors_fail_silent(0.0),
        FaultPlan.successors_fail_silent(0.0, count=1, name="next-fails"),
        FaultPlan(
            name="stale-view",
            fail_successors_at=0.0,
            fail_successor_count=1,
            membership_staleness=1e9,
        ),
        FaultPlan(
            name="fresh-view",
            fail_successors_at=0.0,
            fail_successor_count=1,
            membership_staleness=0.0,
        ),
        FaultPlan.lossy(0.2),
        FaultPlan.downlink_blackout(0.0, 60.0),
    ]


def run(
    *,
    runs: int = 250,
    capacity: int = 9,
    seed: Optional[int] = 2026,
    n_jobs: int = 1,
    journal: Optional[str] = None,
) -> ExperimentResult:
    """Fault-injection campaign table (underlapping plane).

    ``journal`` checkpoints the campaign batch-by-batch to the given
    JSONL path and resumes from it when the file exists (see
    ``docs/CAMPAIGN.md``)."""
    params = EvaluationParams(signal_termination_rate=0.2)
    geometry = params.constellation.plane_geometry(capacity)
    plans = plan_battery()
    campaign = Campaign(
        params,
        capacity=capacity,
        plans=plans,
        schemes=(Scheme.OAQ, Scheme.BAQ),
        runs=runs,
        seed=seed if seed is not None else 0,
        n_jobs=n_jobs,
        journal=journal,
    )
    result = campaign.run()

    analytic = {
        ("fault-free", Scheme.OAQ): conditional_distribution(
            geometry, params, Scheme.OAQ
        ),
        ("fault-free", Scheme.BAQ): conditional_distribution(
            geometry, params, Scheme.BAQ
        ),
        ("successors-fail-all", Scheme.OAQ): fail_silent_reference(
            geometry, params, Scheme.OAQ
        ),
        ("successors-fail-all", Scheme.BAQ): fail_silent_reference(
            geometry, params, Scheme.BAQ
        ),
    }

    headers = [
        "plan",
        "scheme",
        "runs",
        "P(Y>=1)",
        "P(Y>=2)",
        "ci low",
        "ci high",
        "analytic P(Y>=2)",
        "mean level",
    ]
    rows = []
    for outcome in result.outcomes:
        reference = analytic.get((outcome.plan.name, outcome.scheme))
        interval = outcome.wilson(QoSLevel.SEQUENTIAL_DUAL)
        rows.append(
            {
                "plan": outcome.plan.name,
                "scheme": outcome.scheme.name,
                "runs": outcome.runs,
                "P(Y>=1)": outcome.p_at_least(QoSLevel.SINGLE),
                "P(Y>=2)": outcome.p_at_least(QoSLevel.SEQUENTIAL_DUAL),
                "ci low": interval.low,
                "ci high": interval.high,
                "analytic P(Y>=2)": (
                    reference.at_least(QoSLevel.SEQUENTIAL_DUAL)
                    if reference is not None
                    else "-"
                ),
                "mean level": outcome.mean_level(),
            }
        )
    return ExperimentResult(
        experiment_id="faults",
        title=(
            f"fault-injection campaign (k={capacity}, {runs} runs/cell, "
            f"seed={seed})"
        ),
        headers=headers,
        rows=rows,
        timings=result.timings,
        notes=[
            "Killing every successor degrades OAQ to the analytic BAQ "
            "distribution -- graceful degradation: level 2 is lost but "
            "level 1 is untouched.  At the paper's 5-minute deadline "
            "even an omniscient membership view cannot route around a "
            "dead successor (the next-next footprint arrives after "
            "tau), so stale-view and fresh-view coincide here; the "
            "routing benefit appears once tau admits the second "
            "successor.  The 60-minute downlink blackout drives every "
            "cell to level 0: no alert reaches the ground regardless "
            "of scheme.",
        ],
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments faults", description=__doc__
    )
    parser.add_argument("--runs", type=int, default=250, help="runs per cell")
    parser.add_argument("--capacity", type=int, default=9, help="satellites k")
    parser.add_argument("--seed", type=int, default=2026, help="campaign seed")
    parser.add_argument("--jobs", type=int, default=1, help="process-pool size")
    parser.add_argument(
        "--resume",
        metavar="JOURNAL",
        default=None,
        help=(
            "checkpoint the campaign to this JSONL journal and resume "
            "from it if it exists (must match the campaign's grid)"
        ),
    )
    args = parser.parse_args(argv)
    print(
        run(
            runs=args.runs,
            capacity=args.capacity,
            seed=args.seed,
            n_jobs=args.jobs,
            journal=args.resume,
        ).render()
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
