"""Run every experiment and print the report tables.

Usage::

    python -m repro.experiments            # quick set (analytic only)
    python -m repro.experiments --full     # everything, incl. simulation
    python -m repro.experiments --plots    # + ASCII charts of the figures
    python -m repro.experiments --profile  # + profile_<id>.pstats per run

    python -m repro.experiments corpus generate --cells 210 --out DIR
    python -m repro.experiments corpus run --corpus DIR --scorecard F
    python -m repro.experiments corpus score --scorecard F
    python -m repro.experiments corpus diff --scorecard F [--golden G]

    python -m repro.experiments optimize [--smoke] [--jobs N] [--out F]
    python -m repro.experiments faults [--runs N] [--jobs N]

The ``corpus`` subcommand drives the seeded scenario corpus and its
scored conformance harness (see :mod:`repro.experiments.corpus_exp`
and ``docs/SCENARIOS.md``); ``optimize`` sweeps the spare-policy design
space on the lumped quotient solver and reports the Pareto frontier
(see :mod:`repro.experiments.optimize_exp` and ``docs/OPTIMIZE.md``);
``faults`` runs the fault-injection campaign table (see
:mod:`repro.experiments.faults_exp` and ``docs/FAULTS.md``).  All
three take ``--jobs N`` for the affinity-sharded campaign orchestrator
and ``--resume JOURNAL`` for chunk-granular checkpoint/resume (see
``docs/CAMPAIGN.md``).

Profiles are standard :mod:`cProfile` dumps; inspect them with
``python -m pstats profile_fig7.pstats`` (then ``sort cumtime`` /
``stats 20``) or any pstats viewer such as snakeviz.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import sys
from typing import Callable, List, Optional, Sequence

from repro.experiments import (
    aging_exp,
    calibration_exp,
    corpus_exp,
    faults_exp,
    fig7,
    fig8,
    fig9,
    geolocation_exp,
    geometry_exp,
    montecarlo_exp,
    multiplane_exp,
    optimize_exp,
    orbits_exp,
    protocol_exp,
    robustness_exp,
    san_ablation,
    scaled_capacity_exp,
    sweeps,
    table1,
    text_results,
)
from repro.experiments.report import ExperimentResult

#: Experiments of the default (quick, analytic-only) set, in run order.
QUICK_SECTIONS: List[Callable[[], ExperimentResult]] = [
    table1.run,
    geometry_exp.run,
    text_results.run,
    fig7.run,
    fig8.run,
    fig9.run,
    sweeps.run_tau_sweep,
    sweeps.run_mu_sweep,
    robustness_exp.run,
    aging_exp.run,
    multiplane_exp.run,
]

#: Additional experiments run with ``--full`` (simulation-backed).
FULL_SECTIONS: List[Callable[[], ExperimentResult]] = [
    montecarlo_exp.run_conditional_validation,
    montecarlo_exp.run_capacity_validation,
    protocol_exp.run,
    geolocation_exp.run,
    orbits_exp.run_constants,
    orbits_exp.run_latitude_profile,
    san_ablation.run,
    scaled_capacity_exp.run,
    calibration_exp.run,
    faults_exp.run,
    corpus_exp.run,
    optimize_exp.run,
]

#: x-axis header per figure experiment, for ``--plots``.
FIGURE_X_HEADERS = {
    "fig7": "lambda",
    "fig8": "lambda",
    "fig9": "lambda",
    "tau-sweep": "tau",
    "mu-sweep": "mean duration",
}


def _plot(result, x_header: str) -> str:
    """Render an experiment's numeric columns as an ASCII chart."""
    from repro.experiments.ascii_plot import line_chart

    series = {}
    for header in result.headers:
        if header == x_header:
            continue
        points = []
        for row in result.rows:
            try:
                x = float(row[x_header])
                y = float(row[header])
            except (TypeError, ValueError):
                continue
            points.append((x, y))
        if points:
            series[header] = points
    return line_chart(series, title=f"[{result.experiment_id}] {result.title}")


def run_experiment(
    run_fn: Callable[[], ExperimentResult],
    *,
    profile: bool = False,
    profile_dir: Optional[str] = None,
) -> ExperimentResult:
    """Run one experiment callable, optionally under :mod:`cProfile`.

    With ``profile``, the run happens inside a profiler and the stats
    are dumped to ``profile_<experiment_id>.pstats`` in ``profile_dir``
    (default: the current directory).  The result is returned either
    way, so profiling never changes what gets printed.
    """
    if not profile:
        return run_fn()
    profiler = cProfile.Profile()
    result = profiler.runcall(run_fn)
    path = os.path.join(
        profile_dir or os.curdir, f"profile_{result.experiment_id}.pstats"
    )
    profiler.dump_stats(path)
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Subcommand-style dispatch: `corpus ...` has its own CLI.
    if argv and argv[0] == "corpus":
        return corpus_exp.main(argv[1:])
    if argv and argv[0] == "optimize":
        return optimize_exp.main(argv[1:])
    if argv and argv[0] == "faults":
        return faults_exp.main(argv[1:])

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="also run the slow simulation-backed experiments",
    )
    parser.add_argument(
        "--plots",
        action="store_true",
        help="render the figure experiments as ASCII charts too",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "profile each experiment with cProfile and dump "
            "profile_<experiment>.pstats (inspect with python -m pstats "
            "or snakeviz)"
        ),
    )
    args = parser.parse_args(argv)

    for run_fn in QUICK_SECTIONS:
        result = run_experiment(run_fn, profile=args.profile)
        print(result.render())
        print()
        if args.plots and result.experiment_id in FIGURE_X_HEADERS:
            print(_plot(result, FIGURE_X_HEADERS[result.experiment_id]))
            print()
    if args.full:
        for run_fn in FULL_SECTIONS:
            result = run_experiment(run_fn, profile=args.profile)
            print(result.render())
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
