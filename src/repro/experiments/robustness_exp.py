"""Experiment ``robustness``: sensitivity of the QoS model to the
signal-duration distribution (extension; the paper assumes exponential
durations as "fairly typical" in telecom modelling).

Using the general numerically-integrated conditional model, compares
``P(Y = y | k)`` for exponential, hyperexponential (bursty, CV > 1)
and deterministic (CV = 0) signal durations of equal mean.  The
qualitative conclusion the paper draws -- OAQ converts signal lifetime
into accuracy while BAQ cannot -- should not hinge on the exponential
assumption.
"""

from __future__ import annotations

from typing import Sequence

from repro.analytic.distributions import (
    Deterministic,
    Exponential,
    HyperExponential,
)
from repro.analytic.qos_model import conditional_distribution_general
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.experiments.report import ExperimentResult

__all__ = ["HYPEREXPONENTIAL_CV2", "duration_models", "run"]

#: Squared coefficient of variation of the bursty hyperexponential
#: below.  With rates ``[3r, 0.6r]`` and equal weights the mean is
#: ``1/r`` and ``E[X^2] = (1/9 + 1/0.36) / r^2 = 26 / (9 r^2)``, so
#: ``CV^2 = 26/9 - 1 = 17/9``.
HYPEREXPONENTIAL_CV2 = 17.0 / 9.0


def duration_models(mean_minutes: float):
    """Three duration distributions with the same mean: the paper's
    exponential (CV^2 = 1), a bursty hyperexponential
    (CV^2 = 17/9 ~= 1.89) and a deterministic duration (CV^2 = 0)."""
    rate = 1.0 / mean_minutes
    return {
        "exponential": Exponential(rate),
        "hyperexponential": HyperExponential(
            rates=[3.0 * rate, 0.6 * rate], weights=[0.5, 0.5]
        ),
        "deterministic": Deterministic(mean_minutes),
    }


def run(
    *,
    mean_duration: float = 5.0,
    capacities: Sequence[int] = (9, 12),
) -> ExperimentResult:
    """Level >= 2 probability per duration model and scheme."""
    params = EvaluationParams(signal_termination_rate=1.0 / mean_duration)
    computation = Exponential(params.nu)
    headers = ["k", "duration model", "OAQ P(Y>=2)", "BAQ P(Y>=2)"]
    rows = []
    for k in capacities:
        geometry = params.constellation.plane_geometry(k)
        for label, duration in duration_models(mean_duration).items():
            row = {"k": k, "duration model": label}
            for scheme in (Scheme.OAQ, Scheme.BAQ):
                distribution = conditional_distribution_general(
                    geometry, params.tau, duration, computation, scheme
                )
                row[f"{scheme.name} P(Y>=2)"] = distribution.at_least(
                    QoSLevel.SEQUENTIAL_DUAL
                )
            rows.append(row)
    return ExperimentResult(
        experiment_id="robustness",
        title=(
            "QoS sensitivity to the signal-duration distribution "
            f"(mean {mean_duration} min, tau={params.tau})"
        ),
        headers=headers,
        rows=rows,
        notes=[
            "Extension beyond the paper's exponential assumption: the OAQ "
            "advantage persists for bursty (hyperexponential) and "
            "deterministic durations of the same mean.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
