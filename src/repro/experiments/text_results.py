"""Experiment ``text-4.3``: the in-text numerical anchors of
Section 4.3, checked exactly.

* ``P(Y = 3 | k = 12) = 0.44`` under OAQ vs ``0.20`` under BAQ
  (``tau = 5``, ``mu = 0.5``, ``nu = 30``);
* the OAQ level-3 gain from ``mu = 0.5`` to ``mu = 0.2`` reaches
  ~38% over the lambda domain, while BAQ shows no difference;
* the Figure 9 anchor values of ``P(Y >= 2)``.
"""

from __future__ import annotations

from repro.core.config import EvaluationParams
from repro.core.framework import OAQFramework
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.experiments.report import ExperimentResult

__all__ = ["run"]


def run(*, stages: int = 24) -> ExperimentResult:
    """Evaluate every in-text anchor; the ``paper`` column is the value
    printed in the paper, ``measured`` is ours."""
    rows = []

    # Anchor 1: conditional level-3 probabilities at k=12.
    params = EvaluationParams(
        deadline_minutes=5.0, signal_termination_rate=0.5, computation_rate=30.0
    )
    framework = OAQFramework(params, capacity_stages=stages)
    oaq = framework.conditional_qos(12, Scheme.OAQ)[QoSLevel.SIMULTANEOUS_DUAL]
    baq = framework.conditional_qos(12, Scheme.BAQ)[QoSLevel.SIMULTANEOUS_DUAL]
    rows.append(
        {"anchor": "P(Y=3 | k=12) OAQ (tau=5, mu=0.5)", "paper": 0.44, "measured": oaq}
    )
    rows.append(
        {"anchor": "P(Y=3 | k=12) BAQ (tau=5, mu=0.5)", "paper": 0.20, "measured": baq}
    )

    # Anchor 2: the mu-sensitivity gain of OAQ P(Y=3) (Fig. 8, eta=12).
    max_gain = 0.0
    for lam in (1e-5, 3e-5, 5e-5, 8e-5, 1e-4):
        values = {}
        for mu in (0.2, 0.5):
            p = EvaluationParams(
                deadline_minutes=5.0,
                signal_termination_rate=mu,
                node_failure_rate_per_hour=lam,
                deployment_threshold=12,
            )
            values[mu] = OAQFramework(p, capacity_stages=stages).qos_distribution(
                Scheme.OAQ
            )[QoSLevel.SIMULTANEOUS_DUAL]
        max_gain = max(max_gain, values[0.2] / values[0.5] - 1.0)
    rows.append(
        {
            "anchor": "max OAQ P(Y=3) gain, mu 0.5 -> 0.2 (eta=12)",
            "paper": 0.38,
            "measured": max_gain,
        }
    )

    # Anchor 3: Fig. 9 endpoint values of P(Y >= 2) (eta=10, mu=0.2).
    for lam, oaq_paper, baq_paper in ((1e-5, 0.75, 0.33), (1e-4, 0.41, 0.04)):
        p = EvaluationParams(
            deadline_minutes=5.0,
            signal_termination_rate=0.2,
            node_failure_rate_per_hour=lam,
            deployment_threshold=10,
        )
        fw = OAQFramework(p, capacity_stages=stages)
        rows.append(
            {
                "anchor": f"P(Y>=2) OAQ @ lambda={lam:.0e}",
                "paper": oaq_paper,
                "measured": fw.qos_measure(Scheme.OAQ, QoSLevel.SEQUENTIAL_DUAL),
            }
        )
        rows.append(
            {
                "anchor": f"P(Y>=2) BAQ @ lambda={lam:.0e}",
                "paper": baq_paper,
                "measured": fw.qos_measure(Scheme.BAQ, QoSLevel.SEQUENTIAL_DUAL),
            }
        )
    return ExperimentResult(
        experiment_id="text-4.3",
        title="In-text numerical anchors of Section 4.3",
        headers=["anchor", "paper", "measured"],
        rows=rows,
        notes=[
            "The k=12 conditionals are closed-form and match exactly; the "
            "composed anchors depend on the calibrated replacement latency.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
