"""Experiment ``fig8``: ``P(Y = 3)`` as a function of ``lambda``
(paper Figure 8: ``tau = 5``, ``eta = 12``, ``phi = 30000`` hours,
OAQ vs BAQ at ``mu in {0.2, 0.5}``).

Expected shape: OAQ gains as the mean signal duration grows (``mu``
falls) -- up to ~38% over the lambda domain -- while BAQ is entirely
insensitive to ``mu`` because it never waits for an opportunity.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.config import EvaluationParams
from repro.core.framework import OAQFramework
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.experiments.engine import SweepRunner
from repro.experiments.fig7 import DEFAULT_LAMBDA_GRID
from repro.experiments.report import ExperimentResult

__all__ = ["run"]


def _fig8_row(point) -> Dict[str, object]:
    """One lambda's four curve values.  All (scheme, mu) combinations
    share this lambda's capacity config, so the memoized solve runs
    once per row instead of once per framework (4x fewer solves than
    the seed's per-combination rebuild)."""
    row = {"lambda": f"{point['lam']:.0e}"}
    for scheme in (Scheme.OAQ, Scheme.BAQ):
        for mu in point["mus"]:
            params = EvaluationParams(
                deadline_minutes=point["deadline"],
                signal_termination_rate=mu,
                node_failure_rate_per_hour=point["lam"],
                deployment_threshold=point["threshold"],
            )
            framework = OAQFramework(params, capacity_stages=point["stages"])
            value = framework.qos_distribution(scheme)[
                QoSLevel.SIMULTANEOUS_DUAL
            ]
            row[f"{scheme.name} (mu={mu})"] = value
    return row


def run(
    *,
    lambda_grid: Sequence[float] = DEFAULT_LAMBDA_GRID,
    mus: Sequence[float] = (0.2, 0.5),
    threshold: int = 12,
    deadline: float = 5.0,
    stages: int = 24,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Figure 8's four curves."""
    headers = ["lambda"]
    for mu in mus:
        headers.append(f"OAQ (mu={mu})")
    for mu in mus:
        headers.append(f"BAQ (mu={mu})")
    points = [
        {
            "lam": lam,
            "mus": tuple(mus),
            "threshold": threshold,
            "deadline": deadline,
            "stages": stages,
        }
        for lam in lambda_grid
    ]
    return SweepRunner(n_jobs=n_jobs).run(
        experiment_id="fig8",
        title=(
            f"P(Y=3) as a function of lambda (tau={deadline}, eta={threshold}, "
            "phi=30000 hrs)"
        ),
        headers=headers,
        row_fn=_fig8_row,
        points=points,
        notes=[
            "Paper shape: OAQ improves as mu decreases (up to ~38% from "
            "mu=0.5 to mu=0.2); BAQ curves for both mu values coincide.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
