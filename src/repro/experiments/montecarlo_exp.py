"""Experiment ``mc-validate``: Monte-Carlo cross-validation of the
closed-form conditional QoS model and of the SAN capacity model.

Not a figure of the paper -- this is the reproduction's own evidence
that the analytic machinery encodes the intended stochastic processes:

* the rule-based QoS sampler and the *full protocol* simulation are
  compared against the closed forms for representative ``k``;
* the independent plane-degradation DES is compared against the
  phase-type SAN solution of ``P(k)``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analytic.capacity import CapacityModelConfig, capacity_distribution
from repro.analytic.qos_model import conditional_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.experiments.report import ExperimentResult
from repro.simulation.plane_process import simulate_capacity_distribution
from repro.simulation.qos_montecarlo import (
    simulate_conditional_distribution,
    simulate_conditional_distribution_protocol,
)

__all__ = ["run_conditional_validation", "run_capacity_validation"]


def run_conditional_validation(
    *,
    capacities: Sequence[int] = (9, 10, 12, 14),
    samples: int = 60_000,
    protocol_samples: int = 100_000,
    seed: Optional[int] = 20030622,
    engine: str = "vector",
) -> ExperimentResult:
    """Compare ``P(Y = y | k)``: closed form vs samplers.

    The protocol column runs on the struct-of-arrays engine of
    :mod:`repro.simulation.vector` by default, which is what lets the
    default ``protocol_samples`` sit at 100k per cell instead of the
    ~1.5k the scalar event loop could afford; pass ``engine="batch"``
    to reproduce the PR 4 per-replication path.
    """
    params = EvaluationParams(signal_termination_rate=0.2)
    headers = [
        "k",
        "scheme",
        "level",
        "closed form",
        "rule-based MC",
        "protocol MC",
    ]
    rows = []
    for k in capacities:
        geometry = params.constellation.plane_geometry(k)
        for scheme in (Scheme.OAQ, Scheme.BAQ):
            analytic = conditional_distribution(geometry, params, scheme)
            fast = simulate_conditional_distribution(
                geometry, params, scheme, samples=samples, seed=seed
            )
            protocol = simulate_conditional_distribution_protocol(
                geometry,
                params,
                scheme,
                samples=protocol_samples,
                seed=seed,
                engine=engine,
            )
            for level in (
                QoSLevel.SIMULTANEOUS_DUAL,
                QoSLevel.SEQUENTIAL_DUAL,
                QoSLevel.SINGLE,
                QoSLevel.MISSED,
            ):
                if analytic[level] == 0.0 and fast[level] == 0.0:
                    continue
                rows.append(
                    {
                        "k": k,
                        "scheme": scheme.name,
                        "level": int(level),
                        "closed form": analytic[level],
                        "rule-based MC": fast[level],
                        "protocol MC": protocol[level],
                    }
                )
    return ExperimentResult(
        experiment_id="mc-validate",
        title="Closed form vs Monte-Carlo vs full-protocol P(Y=y|k)",
        headers=headers,
        rows=rows,
        notes=[
            "Protocol MC includes the crosslink delay delta and the "
            "computation bound Tg, which the analytic model neglects; "
            "agreement within a few percent is expected.",
        ],
    )


def run_capacity_validation(
    *,
    lam: float = 5e-5,
    threshold: int = 10,
    stages: int = 24,
    horizon_hours: float = 2.0e6,
    seed: Optional[int] = 7,
) -> ExperimentResult:
    """Compare ``P(k)``: SAN phase-type solve vs independent DES."""
    config = CapacityModelConfig(
        failure_rate_per_hour=lam, threshold=threshold
    )
    analytic = capacity_distribution(config, stages=stages)
    simulated = simulate_capacity_distribution(
        config, horizon_hours=horizon_hours, seed=seed
    )
    headers = ["k", "SAN (Erlang unfold)", "independent DES"]
    rows = []
    for k in sorted(set(analytic) | set(simulated)):
        if analytic.get(k, 0.0) < 1e-4 and simulated.get(k, 0.0) < 1e-4:
            continue
        rows.append(
            {
                "k": k,
                "SAN (Erlang unfold)": analytic.get(k, 0.0),
                "independent DES": simulated.get(k, 0.0),
            }
        )
    return ExperimentResult(
        experiment_id="mc-validate-capacity",
        title=f"P(k): SAN solution vs independent DES (lambda={lam:.0e})",
        headers=headers,
        rows=rows,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_conditional_validation().render())
    print()
    print(run_capacity_validation().render())


if __name__ == "__main__":  # pragma: no cover
    main()
