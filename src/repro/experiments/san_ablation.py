"""Experiment ``ablation-phases``: how many Erlang stages do the
deterministic timers need?

UltraSAN solved the capacity model with native deterministic
activities; our numerical path approximates each deterministic timer by
an Erlang chain.  This ablation sweeps the stage count and reports the
total-variation distance of ``P(k)`` from (a) the highest-stage
solution and (b) the exact-deterministic DES, plus the all-exponential
baseline -- quantifying why deterministic-timer support matters.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analytic.capacity import (
    CapacityModelConfig,
    capacity_distribution,
    capacity_distribution_expanded,
    capacity_distribution_exponential,
    capacity_distribution_simulated,
)
from repro.experiments.engine import SweepRunner
from repro.experiments.report import ExperimentResult

__all__ = ["total_variation", "run"]


def total_variation(p: Dict[int, float], q: Dict[int, float]) -> float:
    """Total-variation distance between two capacity distributions."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def _ablation_row(point) -> Dict[str, object]:
    """TV distances of one solution variant against the shared
    references (passed in the point: tiny dicts, cheap to pickle)."""
    config = CapacityModelConfig(
        failure_rate_per_hour=point["lam"], threshold=point["threshold"]
    )
    if point["variant"] == "exponential":
        solution = capacity_distribution_exponential(config)
        label = "exp (no det support)"
        lumped_dev: object = "-"
    else:
        solution = capacity_distribution(config, stages=point["stages"])
        label = point["stages"]
        # Lumped-vs-full check: the per-satellite expanded SAN solved on
        # its verified symmetry quotient must agree with the counted
        # model at the same stage count (they are the same chain).
        lumped = capacity_distribution_expanded(
            config, stages=point["stages"], lump=True
        )
        keys = set(solution) | set(lumped)
        lumped_dev = "{:.2e}".format(
            max(abs(solution.get(k, 0.0) - lumped.get(k, 0.0)) for k in keys)
        )
    simulated = point["simulated"]
    return {
        "stages": label,
        "TV vs max stages": total_variation(solution, point["reference"]),
        "TV vs exact DES": (
            total_variation(solution, simulated)
            if simulated is not None
            else "-"
        ),
        "max |dP| lumped": lumped_dev,
    }


def run(
    *,
    stage_grid: Sequence[int] = (1, 2, 4, 8, 16, 24, 32),
    lam: float = 5e-5,
    threshold: int = 10,
    simulate: bool = True,
    horizon_hours: float = 1.5e6,
    seed: Optional[int] = 11,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Stage-count ablation at one representative ``lambda``."""
    config = CapacityModelConfig(failure_rate_per_hour=lam, threshold=threshold)
    # The reference solve is memoized, so the max-stage grid row below
    # reuses it instead of re-running the largest unfolding.
    reference = capacity_distribution(config, stages=max(stage_grid))
    simulated = (
        capacity_distribution_simulated(
            config, horizon_hours=horizon_hours, seed=seed
        )
        if simulate
        else None
    )
    headers = [
        "stages",
        "TV vs max stages",
        "TV vs exact DES",
        "max |dP| lumped",
    ]
    shared = {
        "lam": lam,
        "threshold": threshold,
        "reference": reference,
        "simulated": simulated,
    }
    points = [{"variant": "exponential", "stages": None, **shared}]
    points.extend(
        {"variant": "erlang", "stages": stages, **shared}
        for stages in stage_grid
    )
    # Stage counts change the *topology* (the Erlang unfolding), so
    # each distinct stage count is its own preassembled structure.
    preassemble = [(config, stages) for stages in dict.fromkeys(stage_grid)]
    return SweepRunner(n_jobs=n_jobs).run(
        experiment_id="ablation-phases",
        title=(
            "Erlang-stage ablation for the deterministic timers "
            f"(lambda={lam:.0e}, eta={threshold})"
        ),
        headers=headers,
        row_fn=_ablation_row,
        points=points,
        preassemble=preassemble,
        notes=[
            "stages=1 is a plain exponential of equal mean; the gap to the "
            "high-stage solution is the price of lacking deterministic-"
            "activity support (what UltraSAN provided natively).",
            "'max |dP| lumped' compares the per-satellite expanded SAN "
            "solved on its symmetry quotient (repro.san.lumping) against "
            "the counted model at the same stage count; agreement at "
            "floating-point noise certifies the lumping end to end.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
