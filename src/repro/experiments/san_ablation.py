"""Experiment ``ablation-phases``: how many Erlang stages do the
deterministic timers need?

UltraSAN solved the capacity model with native deterministic
activities; our numerical path approximates each deterministic timer by
an Erlang chain.  This ablation sweeps the stage count and reports the
total-variation distance of ``P(k)`` from (a) the highest-stage
solution and (b) the exact-deterministic DES, plus the all-exponential
baseline -- quantifying why deterministic-timer support matters.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analytic.capacity import (
    CapacityModelConfig,
    capacity_distribution,
    capacity_distribution_exponential,
    capacity_distribution_simulated,
)
from repro.experiments.report import ExperimentResult

__all__ = ["total_variation", "run"]


def total_variation(p: Dict[int, float], q: Dict[int, float]) -> float:
    """Total-variation distance between two capacity distributions."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def run(
    *,
    stage_grid: Sequence[int] = (1, 2, 4, 8, 16, 24, 32),
    lam: float = 5e-5,
    threshold: int = 10,
    simulate: bool = True,
    horizon_hours: float = 1.5e6,
    seed: Optional[int] = 11,
) -> ExperimentResult:
    """Stage-count ablation at one representative ``lambda``."""
    config = CapacityModelConfig(failure_rate_per_hour=lam, threshold=threshold)
    reference = capacity_distribution(config, stages=max(stage_grid))
    simulated = (
        capacity_distribution_simulated(
            config, horizon_hours=horizon_hours, seed=seed
        )
        if simulate
        else None
    )
    headers = ["stages", "TV vs max stages", "TV vs exact DES"]
    rows = []
    exponential = capacity_distribution_exponential(config)
    rows.append(
        {
            "stages": "exp (no det support)",
            "TV vs max stages": total_variation(exponential, reference),
            "TV vs exact DES": (
                total_variation(exponential, simulated) if simulated else "-"
            ),
        }
    )
    for stages in stage_grid:
        solution = capacity_distribution(config, stages=stages)
        rows.append(
            {
                "stages": stages,
                "TV vs max stages": total_variation(solution, reference),
                "TV vs exact DES": (
                    total_variation(solution, simulated) if simulated else "-"
                ),
            }
        )
    return ExperimentResult(
        experiment_id="ablation-phases",
        title=(
            "Erlang-stage ablation for the deterministic timers "
            f"(lambda={lam:.0e}, eta={threshold})"
        ),
        headers=headers,
        rows=rows,
        notes=[
            "stages=1 is a plain exponential of equal mean; the gap to the "
            "high-stage solution is the price of lacking deterministic-"
            "activity support (what UltraSAN provided natively).",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
