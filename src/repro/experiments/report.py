"""Plain-text report rendering for experiment results.

Every experiment module returns an :class:`ExperimentResult` -- a
titled table of rows -- so benchmarks, tests and the command-line
entry points share one representation and EXPERIMENTS.md can quote the
exact program output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["ExperimentResult", "format_table", "json_safe"]


def _json_key(key: object) -> str:
    """Deterministic string form of a mapping key (JSON object keys
    must be strings; numpy scalars stringify via their python value)."""
    if isinstance(key, str):
        return key
    coerced = json_safe(key)
    if isinstance(coerced, str):
        return coerced
    return str(coerced)


def json_safe(value: object) -> object:
    """Recursively coerce ``value`` into plain JSON-serialisable data.

    Experiment rows and metadata routinely hold numpy scalars
    (``np.float64`` / ``np.int64`` from vectorised sweeps), arrays and
    non-finite floats, which ``json.dumps`` either rejects or encodes
    as the non-standard ``NaN`` / ``Infinity`` literals depending on
    flags.  The coercion here is deterministic and strict-JSON clean:

    * numpy scalars become their python equivalents (``.item()``);
    * numpy arrays become (nested) lists;
    * ``nan`` / ``inf`` / ``-inf`` become the strings ``"NaN"`` /
      ``"Infinity"`` / ``"-Infinity"`` (so ``json.dumps(...,
      allow_nan=False)`` always succeeds and output is byte-stable);
    * mappings get string keys, tuples/sets become sorted-or-ordered
      lists, everything else unknown falls back to ``str``.
    """
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    if isinstance(value, np.ndarray):
        return [json_safe(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {_json_key(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json_safe(item) for item in value)
    if hasattr(value, "to_dict"):
        return json_safe(value.to_dict())
    return str(value)


@dataclass
class ExperimentResult:
    """A titled table: ``headers`` name the columns, each row maps
    header -> value.

    ``timings`` holds per-stage wall-clock seconds recorded by the
    experiment engine (e.g. ``capacity_presolve``, ``rows``, ``total``)
    so benchmarks can assert where the time went; it is empty for
    experiments that do not time themselves.

    ``metadata`` carries auxiliary diagnostics that are not part of the
    rendered table -- the engine stores solve-cache statistics under
    ``"cache_stats"`` (name -> :class:`CacheStats`-shaped dict) so runs
    can report how much memoization saved.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[Dict[str, object]]
    notes: List[str] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def column(self, header: str) -> List[object]:
        """All values of one column, in row order."""
        return [row[header] for row in self.rows]

    def render(self) -> str:
        """The table as aligned plain text."""
        return format_table(
            f"[{self.experiment_id}] {self.title}",
            self.headers,
            self.rows,
            notes=self.notes,
        )


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Dict[str, object]],
    *,
    notes: Sequence[str] = (),
) -> str:
    """Render rows as an aligned text table."""
    cells = [[_format_value(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(line[i]) for line in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
