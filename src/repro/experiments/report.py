"""Plain-text report rendering for experiment results.

Every experiment module returns an :class:`ExperimentResult` -- a
titled table of rows -- so benchmarks, tests and the command-line
entry points share one representation and EXPERIMENTS.md can quote the
exact program output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["ExperimentResult", "format_table"]


@dataclass
class ExperimentResult:
    """A titled table: ``headers`` name the columns, each row maps
    header -> value.

    ``timings`` holds per-stage wall-clock seconds recorded by the
    experiment engine (e.g. ``capacity_presolve``, ``rows``, ``total``)
    so benchmarks can assert where the time went; it is empty for
    experiments that do not time themselves.

    ``metadata`` carries auxiliary diagnostics that are not part of the
    rendered table -- the engine stores solve-cache statistics under
    ``"cache_stats"`` (name -> :class:`CacheStats`-shaped dict) so runs
    can report how much memoization saved.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[Dict[str, object]]
    notes: List[str] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def column(self, header: str) -> List[object]:
        """All values of one column, in row order."""
        return [row[header] for row in self.rows]

    def render(self) -> str:
        """The table as aligned plain text."""
        return format_table(
            f"[{self.experiment_id}] {self.title}",
            self.headers,
            self.rows,
            notes=self.notes,
        )


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Dict[str, object]],
    *,
    notes: Sequence[str] = (),
) -> str:
    """Render rows as an aligned text table."""
    cells = [[_format_value(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(line[i]) for line in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
