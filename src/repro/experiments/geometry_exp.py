"""Experiment ``eq2-M``: the geometric quantities of Section 4.2.1 --
``Tr[k]``, ``L1[k]``, ``L2[k]``, ``I[k]`` and the opportunity bound
``M[k]`` of Eq. (2) -- across plane capacities.

Checks the two facts the paper derives from them: footprints underlap
exactly when ``k < 11``, and with ``tau < 9`` minutes the bound on
consecutive coverage is ``M[k] = 2`` (sequential *dual* coverage at
most)."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.config import REFERENCE_CONSTELLATION, ConstellationConfig
from repro.experiments.report import ExperimentResult

__all__ = ["run"]


def run(
    constellation: ConstellationConfig = REFERENCE_CONSTELLATION,
    *,
    capacities: Iterable[int] = range(6, 15),
    deadlines: Sequence[float] = (5.0, 12.0),
) -> ExperimentResult:
    """Tabulate the plane geometry and ``M[k]`` per capacity."""
    headers = ["k", "Tr[k]", "L1[k]", "L2[k]", "I[k]"] + [
        f"M[k] (tau={tau})" for tau in deadlines
    ]
    rows = []
    for k in capacities:
        geometry = constellation.plane_geometry(k)
        row = {
            "k": k,
            "Tr[k]": geometry.revisit_time,
            "L1[k]": geometry.l1,
            "L2[k]": geometry.l2,
            "I[k]": geometry.indicator,
        }
        for tau in deadlines:
            if geometry.overlapping:
                row[f"M[k] (tau={tau})"] = "-"
            else:
                row[f"M[k] (tau={tau})"] = geometry.max_consecutive_coverage(tau)
        rows.append(row)
    return ExperimentResult(
        experiment_id="eq2-M",
        title="Plane geometry and the Eq. (2) opportunity bound M[k]",
        headers=headers,
        rows=rows,
        notes=[
            "Underlap (I[k]=0) holds exactly for k <= 10 (Section 4.2.1).",
            "With tau = 5 < Tc = 9 the bound is M[k] = 2: sequential dual "
            "coverage at most.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
