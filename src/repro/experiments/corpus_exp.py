"""Experiment ``corpus``: the seeded scenario corpus and its scored
cross-solver conformance run.

Two entry points share the machinery:

* :func:`run` -- the registry-style experiment (``--full`` set): runs a
  small seeded corpus inline and reports one row per scenario family
  (cells, statuses, checks, throughput).
* :func:`main` -- the subcommand CLI behind
  ``python -m repro.experiments corpus ...``::

      corpus generate --cells 210 --seed 20260 --out build/corpus
      corpus run      --corpus build/corpus --scorecard build/scorecard.json \\
                      [--jobs N] [--resume build/corpus.journal]
      corpus score    --scorecard build/scorecard.json
      corpus diff     --scorecard build/scorecard.json \\
                      --golden tests/golden/corpus/scorecard.json

  ``generate`` writes the on-disk corpus (metadata + one JSON case per
  cell), ``run`` executes the conformance harness and writes the
  scorecard, ``score`` summarises an existing scorecard (exit status 1
  unless every cell passed), and ``diff`` compares a scorecard against
  a golden one ignoring timing fields (exit status 1 on any
  behavioural difference).

The golden corpus under ``tests/golden/corpus/`` is generated with
:data:`GOLDEN_SEED` / :data:`GOLDEN_CELLS` and pinned by the tier-1
smoke test; regenerate it with ``make_golden()`` (or
``corpus generate --cells 30 --seed 20260 --out tests/golden/corpus``
plus a ``run``) after any intentional behaviour change.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.experiments.report import ExperimentResult
from repro.scenarios.generator import FAMILIES, generate_corpus
from repro.scenarios.runner import CellResult, run_corpus
from repro.scenarios.schema import read_corpus, write_corpus
from repro.scenarios.scorer import (
    diff_scorecards,
    load_scorecard,
    score_run,
    scorecard_to_json,
)

__all__ = [
    "GOLDEN_SEED",
    "GOLDEN_CELLS",
    "GOLDEN_DIR",
    "run",
    "make_golden",
    "main",
]

#: Seed and size of the checked-in golden corpus.
GOLDEN_SEED = 20260
GOLDEN_CELLS = 30

#: Repo-relative location of the golden corpus.
GOLDEN_DIR = os.path.join("tests", "golden", "corpus")


def run(*, n_cells: int = 12, seed: int = GOLDEN_SEED) -> ExperimentResult:
    """Generate a small seeded corpus, run the conformance harness and
    report one row per scenario family."""
    metadata, cases = generate_corpus(n_cells, seed, name="corpus-experiment")
    result = run_corpus(cases)
    scorecard = score_run(result, metadata=metadata)
    summary = scorecard["summary"]
    rows = []
    for family, counts in sorted(summary["families"].items()):
        family_cells = [cell for cell in result.cells if cell.family == family]
        rows.append(
            {
                "family": family,
                "cells": counts["cells"],
                "pass": counts["pass"],
                "fail": counts["fail"],
                "error": counts["error"],
                "checks": sum(len(cell.checks) for cell in family_cells),
                "seconds": sum(cell.seconds for cell in family_cells),
            }
        )
    return ExperimentResult(
        experiment_id="corpus",
        title=f"Scenario-corpus conformance (seed {seed}, {n_cells} cells)",
        headers=["family", "cells", "pass", "fail", "error", "checks", "seconds"],
        rows=rows,
        notes=[
            f"{summary['checks_passed']}/{summary['checks_evaluated']} checks "
            f"passed; {summary['unexplained_fallbacks']} unexplained solver "
            f"fallbacks; {summary['cells_per_sec']:.2f} cells/sec",
        ],
        timings={"total": result.seconds},
        metadata={"scorecard_summary": summary},
    )


def make_golden(directory: str = GOLDEN_DIR) -> str:
    """(Re)write the golden corpus and its scorecard; returns the
    scorecard path.  Run this after intentional behaviour changes, then
    commit the result."""
    metadata, cases = generate_corpus(
        GOLDEN_CELLS, GOLDEN_SEED, name="golden-corpus"
    )
    write_corpus(directory, metadata, cases)
    result = run_corpus(cases)
    scorecard = score_run(result, metadata=metadata)
    path = os.path.join(directory, "scorecard.json")
    with open(path, "w") as handle:
        handle.write(scorecard_to_json(scorecard))
    return path


def _print_progress(cell: CellResult) -> None:
    print(f"  {cell.case_id}: {cell.status} ({cell.seconds:.2f}s)")


def _cmd_generate(args: argparse.Namespace) -> int:
    metadata, cases = generate_corpus(
        args.cells,
        args.seed,
        name=args.name,
        families=args.families,
        n_jobs=args.jobs,
        describe_git=args.git_provenance,
    )
    write_corpus(args.out, metadata, cases)
    print(
        f"wrote {len(cases)} cases to {args.out} "
        f"(seed {metadata.seed}, families: "
        + ", ".join(f"{family} x{count}" for family, count in metadata.families)
        + ")"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    metadata, cases = read_corpus(args.corpus)
    print(f"running {len(cases)} cells from {args.corpus} ...")
    extra_checks = ("protocol_mc",) if args.protocol_mc else ()
    result = run_corpus(
        cases,
        progress=_print_progress if args.verbose else None,
        extra_checks=extra_checks,
        n_jobs=args.jobs,
        journal=args.resume,
    )
    if result.campaign is not None:
        print(
            f"campaign: {result.campaign['chunks']} chunks over "
            f"{result.campaign['workers']} worker(s), "
            f"{result.campaign['resumed']} resumed, "
            f"{result.campaign['stolen']} stolen"
        )
    scorecard = score_run(result, metadata=metadata)
    with open(args.scorecard, "w") as handle:
        handle.write(scorecard_to_json(scorecard))
    summary = scorecard["summary"]
    print(
        f"{summary['pass']}/{summary['cells']} cells passed "
        f"({summary['fail']} failed, {summary['error']} errored), "
        f"{summary['cells_per_sec']:.2f} cells/sec -> {args.scorecard}"
    )
    return 0 if summary["all_passed"] else 1


def _cmd_score(args: argparse.Namespace) -> int:
    scorecard = load_scorecard(args.scorecard)
    summary = scorecard["summary"]
    print(json.dumps(summary, indent=2, sort_keys=True))
    for cell in scorecard["cells"]:
        if cell["status"] != "pass":
            failed = [
                check["name"] for check in cell["checks"] if not check["passed"]
            ]
            print(f"{cell['case_id']}: {cell['status']} ({', '.join(failed)})")
    return 0 if summary["all_passed"] else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    golden = load_scorecard(args.golden)
    candidate = load_scorecard(args.scorecard)
    differences = diff_scorecards(golden, candidate)
    if not differences:
        print(f"{args.scorecard} matches {args.golden}")
        return 0
    for line in differences:
        print(line)
    print(f"{len(differences)} difference(s)")
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments corpus",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a seeded corpus on disk"
    )
    generate.add_argument("--cells", type=int, default=210)
    generate.add_argument("--seed", type=int, default=GOLDEN_SEED)
    generate.add_argument("--out", required=True, help="corpus directory")
    generate.add_argument("--name", default="scenario-corpus")
    generate.add_argument(
        "--families",
        nargs="+",
        choices=sorted(FAMILIES),
        default=None,
        help="restrict to these scenario families",
    )
    generate.add_argument("--jobs", type=int, default=1)
    generate.add_argument(
        "--git-provenance",
        action="store_true",
        help="stamp `git describe` into the metadata (breaks byte-identical "
        "regeneration from metadata alone)",
    )
    generate.set_defaults(func=_cmd_generate)

    runner = commands.add_parser(
        "run", help="run the conformance harness over a corpus"
    )
    runner.add_argument("--corpus", required=True, help="corpus directory")
    runner.add_argument("--scorecard", required=True, help="output JSON path")
    runner.add_argument("--verbose", action="store_true")
    runner.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (affinity-sharded campaign orchestrator)",
    )
    runner.add_argument(
        "--resume",
        metavar="JOURNAL",
        default=None,
        help=(
            "checkpoint the run to this JSONL journal and resume from it "
            "if it exists (must have been recorded for the same corpus)"
        ),
    )
    runner.add_argument(
        "--protocol-mc",
        action="store_true",
        help="force the vector-engine protocol_mc conformance check onto "
        "every cell (off by default; changes the scorecard layout, so do "
        "not combine with golden diffs)",
    )
    runner.set_defaults(func=_cmd_run)

    score = commands.add_parser("score", help="summarise a scorecard")
    score.add_argument("--scorecard", required=True)
    score.set_defaults(func=_cmd_score)

    diff = commands.add_parser(
        "diff", help="compare a scorecard against a golden one"
    )
    diff.add_argument("--scorecard", required=True)
    diff.add_argument(
        "--golden", default=os.path.join(GOLDEN_DIR, "scorecard.json")
    )
    diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
