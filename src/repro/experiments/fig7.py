"""Experiment ``fig7``: probability of orbital-plane capacity
``P(K = k)`` as a function of the node-failure rate ``lambda``
(paper Figure 7: ``eta = 10``, ``phi = 30000`` hours).

Expected shape (paper Section 4.3): full capacity ``P(14)`` dominates
at low ``lambda``; as ``lambda`` grows the threshold capacity
``P(10)`` rapidly increases and becomes dominant, while ``P(9)`` stays
small because the threshold-triggered deployment policy prevents the
plane from operating below the threshold.

All grid points share one capacity *topology* (``lambda`` is a rate
parameter), so the sweep preassembles that structure once and each
point re-rates it and warm-starts its steady-state solve from the
previous point (see ``docs/SAN_ENGINE.md``).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analytic.capacity import CapacityModelConfig, capacity_distribution
from repro.experiments.engine import SweepRunner
from repro.experiments.report import ExperimentResult

__all__ = ["DEFAULT_LAMBDA_GRID", "run"]

#: The figures sweep lambda over [1e-5, 1e-4] per hour.
DEFAULT_LAMBDA_GRID = tuple(i * 1e-5 for i in range(1, 11))


def _capacity_row(point) -> Dict[str, object]:
    """One lambda's ``P(k)`` curve.  The solve happens here (not in a
    presolve) because each grid point has its own config -- in parallel
    mode that keeps the solves on the workers."""
    config = CapacityModelConfig(
        failure_rate_per_hour=point["lam"],
        threshold=point["threshold"],
        scheduled_period_hours=point["phi"],
        replacement_latency_hours=point["latency"],
    )
    distribution = capacity_distribution(config, stages=point["stages"])
    row = {"lambda": f"{point['lam']:.0e}"}
    for k in point["capacities"]:
        row[f"P(K={k})"] = distribution.get(k, 0.0)
    return row


def run(
    *,
    lambda_grid: Sequence[float] = DEFAULT_LAMBDA_GRID,
    threshold: int = 10,
    scheduled_period_hours: float = 30000.0,
    replacement_latency_hours: float = 168.0,
    stages: int = 24,
    capacities: Sequence[int] = tuple(range(9, 15)),
    n_jobs: int = 1,
) -> ExperimentResult:
    """Regenerate Figure 7's curves."""
    headers = ["lambda"] + [f"P(K={k})" for k in capacities]
    points = [
        {
            "lam": lam,
            "threshold": threshold,
            "phi": scheduled_period_hours,
            "latency": replacement_latency_hours,
            "stages": stages,
            "capacities": tuple(capacities),
        }
        for lam in lambda_grid
    ]
    # Every lambda shares one topology; assembling it up front lets all
    # points (first included) take the re-rate path.  Any config from
    # the grid identifies the topology.
    preassemble = []
    if points:
        preassemble.append(
            (
                CapacityModelConfig(
                    failure_rate_per_hour=points[0]["lam"],
                    threshold=threshold,
                    scheduled_period_hours=scheduled_period_hours,
                    replacement_latency_hours=replacement_latency_hours,
                ),
                stages,
            )
        )
    return SweepRunner(n_jobs=n_jobs).run(
        experiment_id="fig7",
        title=(
            "Probability of orbital-plane capacity "
            f"(eta={threshold}, phi={scheduled_period_hours:.0f} hrs)"
        ),
        headers=headers,
        row_fn=_capacity_row,
        points=points,
        preassemble=preassemble,
        notes=[
            "Paper shape: P(14) dominates at lambda=1e-5; P(10) rapidly "
            "increases and dominates as lambda grows; P(9) stays small.",
            f"replacement latency = {replacement_latency_hours} hrs "
            "(calibrated; not published in the paper).",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
