"""Experiment ``scaled-capacity``: lumped solves of scaled-up planes.

The paper's orbital plane has 14 satellites; this experiment scales the
plane to 2x--4x (satellites, in-orbit spares and the threshold ``eta``
all multiplied) and solves the **per-satellite expanded** SAN
(:func:`repro.analytic.capacity.build_capacity_san_expanded`) through
the verified symmetry quotient (:mod:`repro.san.lumping`).  The
expanded tangible space grows as :math:`O(2^{\\text{satellites}})` --
about :math:`7.2\\times 10^{16}` markings at 4x, far beyond any direct
solver -- while the orbit quotient stays linear in the satellite count,
which is the whole point of the lumping engine.

Reported per scale: satellite count, orbit representatives vs full
tangible markings (and their ratio), and the resulting steady-state
``P(K >= eta)`` and ``E[K]``.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analytic.capacity import (
    CapacityModelConfig,
    capacity_distribution_expanded,
    expanded_capacity_summary,
)
from repro.experiments.engine import SweepRunner
from repro.experiments.report import ExperimentResult

__all__ = ["scaled_config", "run"]

#: Erlang stages for the two deterministic timers.  The scaled planes
#: are a capacity study, not a timer-accuracy study; 8 stages keeps the
#: 4x quotient solve fast while staying well inside the ablation's
#: acceptable band (see experiment ``ablation-phases``).
_STAGES = 8


def scaled_config(
    scale: int, *, failure_rate_per_hour: float = 1e-5
) -> CapacityModelConfig:
    """The paper's plane with every population multiplied by ``scale``
    (the per-satellite failure rate and the timers are intensive and
    stay fixed)."""
    return CapacityModelConfig(
        full_capacity=14 * scale,
        in_orbit_spares=2 * scale,
        threshold=10 * scale,
        failure_rate_per_hour=failure_rate_per_hour,
    )


def _scaled_row(point) -> Dict[str, object]:
    scale = point["scale"]
    config = scaled_config(
        scale, failure_rate_per_hour=point["failure_rate_per_hour"]
    )
    distribution = capacity_distribution_expanded(
        config, stages=_STAGES, lump=True
    )
    summary = expanded_capacity_summary(config, stages=_STAGES)
    p_at_least_eta = sum(
        p for k, p in distribution.items() if k >= config.threshold
    )
    expected_k = sum(k * p for k, p in distribution.items())
    return {
        "scale": f"{scale}x",
        "satellites": config.full_capacity,
        "orbit reps": summary["orbit_representatives"],
        "full markings": f"{summary['full_tangible_markings']:.3e}",
        "reduction": f"{summary['marking_reduction']:.1f}x",
        "P(K>=eta)": p_at_least_eta,
        "E[K]": expected_k,
    }


def run(
    *,
    scales: Sequence[int] = (1, 2, 3, 4),
    failure_rate_per_hour: float = 1e-5,
    n_jobs: int = 1,
) -> ExperimentResult:
    """Solve the expanded plane at each scale through the lumped path."""
    points = [
        {"scale": scale, "failure_rate_per_hour": failure_rate_per_hour}
        for scale in scales
    ]
    headers = [
        "scale",
        "satellites",
        "orbit reps",
        "full markings",
        "reduction",
        "P(K>=eta)",
        "E[K]",
    ]
    return SweepRunner(n_jobs=n_jobs).run(
        experiment_id="scaled-capacity",
        title=(
            "Scaled constellations through the symmetry quotient "
            f"(lambda={failure_rate_per_hour:.0e}, stages={_STAGES})"
        ),
        headers=headers,
        row_fn=_scaled_row,
        points=points,
        notes=[
            "'full markings' counts the tangible states of the "
            "per-satellite expanded SAN that the quotient stands for; "
            "beyond 1x it is far outside direct-solver reach.",
            "The refinement is verified per topology (repro.san.lumping); "
            "P(K) at 1x matches the counted paper model to ~1e-15.",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
