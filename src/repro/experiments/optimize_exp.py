"""Experiment ``optimize``: the spare-policy design-space sweep.

Two entry points share the machinery:

* :func:`run` -- the registry-style experiment (``--full`` set): sweeps
  the default :func:`~repro.optimize.design.design_grid` (1134 cells /
  42 SAN topologies with the stock axes) through the lumped quotient
  solver and reports the Pareto-efficient cells, with the full per-cell
  table, fallback scorecard and policy recommendation in the metadata.
* :func:`main` -- the subcommand CLI behind
  ``python -m repro.experiments optimize``::

      optimize                          # full default grid
      optimize --smoke                  # the 24-cell golden smoke grid
      optimize --stages 8 --jobs 4      # finer Erlang clock, 4 workers
      optimize --resume build/opt.jsonl # checkpoint / resume the sweep
      optimize --out build/optimize.json

  ``--out`` dumps the complete result (rows, frontier, scorecard,
  recommendation, timings) as strict JSON.  The exit status is 1 when
  the fallback scorecard has *unexplained* entries -- a structure
  fallback on this grid means a lumping/rerate bug, never an expected
  contingency (see ``docs/OPTIMIZE.md``).

Cells are evaluated in topology-grouped order (the grid builders sort
them that way), so each of the grid's SAN topologies is refined and
quotiented once and every subsequent cell in the group takes the
re-rate + warm-started-solve path; the per-stage ``refine`` /
``rerate`` / ``solve`` timing deltas in the result show the split.
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
import time
from typing import Dict, Optional, Sequence

from repro.experiments.engine import SweepRunner
from repro.experiments.report import ExperimentResult, json_safe
from repro.optimize.design import (
    DesignPoint,
    design_grid,
    grid_topology_count,
    smoke_grid,
)
from repro.optimize.evaluate import evaluate_cell
from repro.optimize.pareto import (
    DEFAULT_AVAILABILITY_TARGET,
    DEFAULT_QOS_TARGET,
    classify_fallbacks,
    pareto_frontier,
    recommend_policy,
)

__all__ = ["HEADERS", "run", "main"]

#: Column order of the per-cell rows (and the Pareto table).
HEADERS = [
    "scale",
    "full",
    "spares",
    "policy",
    "eta",
    "phi_hours",
    "latency_hours",
    "lambda",
    "rho",
    "k_min",
    "expected_k",
    "availability",
    "qos_alert",
    "cost",
    "structure_fallbacks",
    "solver_fallbacks",
]


def _evaluate(point: DesignPoint, *, stages: int) -> Dict[str, object]:
    """Top-level (hence picklable for the process-pool path) row fn."""
    return evaluate_cell(point, stages=stages)


def _topology_affinity(point: DesignPoint):
    """Campaign affinity key: cells sharing a SAN topology execute
    consecutively on one worker, so each topology is refined and
    quotiented once per chunk and every subsequent cell re-rates it."""
    return point.topology_group()


def run(
    *,
    cells: Optional[Sequence[DesignPoint]] = None,
    stages: int = 6,
    n_jobs: int = 1,
    journal: Optional[str] = None,
    availability_target: float = DEFAULT_AVAILABILITY_TARGET,
    qos_target: float = DEFAULT_QOS_TARGET,
) -> ExperimentResult:
    """Sweep the design grid and report the Pareto frontier.

    The rendered table holds only the Pareto-efficient cells (the
    interesting output); the complete per-cell table, the fallback
    scorecard and the recommendation live in ``metadata`` (``"cells"``,
    ``"fallback_scorecard"``, ``"recommendation"``).  ``journal``
    checkpoints the sweep to the given JSONL path, chunk by chunk, and
    resumes from it (skipping completed topology groups) when the file
    already exists; see ``docs/CAMPAIGN.md``.
    """
    if cells is None:
        cells = design_grid()
    cells = list(cells)
    runner = SweepRunner(n_jobs=n_jobs, journal=journal)
    result = runner.run(
        experiment_id="optimize",
        title=(
            f"Spare-policy design-space optimization "
            f"({len(cells)} cells, {grid_topology_count(cells)} topologies, "
            f"stages={stages})"
        ),
        headers=HEADERS,
        row_fn=functools.partial(_evaluate, stages=stages),
        points=cells,
        affinity=_topology_affinity,
    )
    rows = result.rows
    frontier = pareto_frontier(rows)
    scorecard = classify_fallbacks(rows)
    recommendation = recommend_policy(
        rows,
        availability_target=availability_target,
        qos_target=qos_target,
    )
    result.metadata.update(
        {
            "grid_cells": len(cells),
            "grid_topologies": grid_topology_count(cells),
            "stages": stages,
            "cells": rows,
            "fallback_scorecard": scorecard,
            "recommendation": recommendation,
        }
    )
    rec_cell = recommendation["cell"]
    rec_note = (
        "no cells evaluated"
        if rec_cell is None
        else (
            f"recommended: {rec_cell['policy']} policy, "
            f"{rec_cell['spares']} spares, eta={rec_cell['eta']}, "
            f"cost={rec_cell['cost']:.2f} "
            f"(targets {'met' if recommendation['constraints_met'] else 'NOT met'}: "
            f"availability>={availability_target}, qos>={qos_target})"
        )
    )
    result.rows = frontier
    result.notes = list(result.notes) + [
        f"{len(frontier)} Pareto-efficient cells of {len(rows)} evaluated",
        rec_note,
        f"fallbacks: {len(scorecard['explained'])} explained (solver), "
        f"{len(scorecard['unexplained'])} unexplained (structure)",
    ]
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments optimize",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the 24-cell golden smoke grid instead of the full grid",
    )
    parser.add_argument(
        "--stages",
        type=int,
        default=6,
        help="Erlang stages of the deterministic timers (default 6)",
    )
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--resume",
        metavar="JOURNAL",
        default=None,
        help=(
            "checkpoint the sweep to this JSONL journal and resume from "
            "it if it exists (must have been recorded for the same grid)"
        ),
    )
    parser.add_argument(
        "--availability-target",
        type=float,
        default=DEFAULT_AVAILABILITY_TARGET,
    )
    parser.add_argument(
        "--qos-target", type=float, default=DEFAULT_QOS_TARGET
    )
    parser.add_argument(
        "--out", default=None, help="also dump the full result as JSON"
    )
    args = parser.parse_args(argv)

    cells = smoke_grid() if args.smoke else design_grid()
    start = time.perf_counter()
    result = run(
        cells=cells,
        stages=args.stages,
        n_jobs=args.jobs,
        journal=args.resume,
        availability_target=args.availability_target,
        qos_target=args.qos_target,
    )
    elapsed = time.perf_counter() - start
    print(result.render())
    scorecard = result.metadata["fallback_scorecard"]
    print(
        f"\n{scorecard['cells']} cells in {elapsed:.1f}s "
        f"({scorecard['cells'] / elapsed:.1f} cells/sec), "
        f"{scorecard['clean']} clean, "
        f"{len(scorecard['explained'])} explained fallbacks, "
        f"{len(scorecard['unexplained'])} unexplained"
    )
    if args.out:
        payload: Dict[str, object] = json_safe(
            {
                "experiment_id": result.experiment_id,
                "title": result.title,
                "headers": result.headers,
                "frontier": result.rows,
                "notes": result.notes,
                "timings": result.timings,
                "metadata": result.metadata,
            }
        )
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 1 if scorecard["unexplained"] else 0


if __name__ == "__main__":
    sys.exit(main())
