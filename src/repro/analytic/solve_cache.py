"""Keyed, thread-safe LRU memoization for expensive structural solves.

The SAN capacity pipeline (reachability graph, Erlang phase-type
unfolding, sparse steady-state solve) depends only on the frozen
:class:`~repro.analytic.capacity.CapacityModelConfig` and the stage
count -- not on the QoS-side parameters ``tau`` and ``mu``.  Sweeps and
figure experiments therefore repeat identical solves many times; this
module provides the cache that collapses them to one solve per distinct
key (see :mod:`repro.analytic.capacity` for the cache instances and
:mod:`repro.experiments.engine` for the sweep runner built on top).

Design notes
------------

* Keys must be hashable; frozen dataclasses of scalars qualify.
* ``get_or_compute`` holds the cache lock across a miss's factory call,
  so concurrent threads asking for the same key trigger **exactly one**
  solve -- the property the hit/miss counters (and the tests asserting
  "a tau sweep performs one capacity solve") rely on.  Cross-*process*
  parallelism gets the same economy by seeding worker caches from a
  parent snapshot instead (:meth:`LRUSolveCache.snapshot` /
  :meth:`LRUSolveCache.seed`).
* Counters are monotonic across ``clear()`` unless ``reset_stats`` is
  requested, so tests can take before/after deltas.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Tuple

from repro.errors import ConfigurationError

__all__ = ["CacheStats", "LRUSolveCache", "cache_stats"]

#: Weak registry of every live cache, keyed by name (latest wins on a
#: name collision).  Lets diagnostics enumerate caches without keeping
#: short-lived test caches alive.
_REGISTRY: "weakref.WeakValueDictionary[str, LRUSolveCache]" = (
    weakref.WeakValueDictionary()
)
_REGISTRY_LOCK = threading.Lock()


def cache_stats() -> Dict[str, CacheStats]:
    """Name-keyed :meth:`LRUSolveCache.stats` snapshots of every live
    cache, for experiment metadata and diagnostics."""
    with _REGISTRY_LOCK:
        caches = list(_REGISTRY.items())
    return {name: cache.stats() for name, cache in sorted(caches)}


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`LRUSolveCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        """Total ``get_or_compute`` calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """``hits / lookups`` (0.0 when nothing was looked up)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class LRUSolveCache:
    """A bounded least-recently-used cache with solve accounting.

    Parameters
    ----------
    maxsize:
        Entries retained; the least recently used entry is evicted
        beyond this.  Must be >= 1.
    name:
        Diagnostic label used in ``repr`` and error messages.
    """

    def __init__(self, maxsize: int = 64, *, name: str = "solve-cache"):
        if maxsize < 1:
            raise ConfigurationError(
                f"cache maxsize must be >= 1, got {maxsize}"
            )
        self.name = name
        self._maxsize = int(maxsize)
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        with _REGISTRY_LOCK:
            _REGISTRY[name] = self

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def get_or_compute(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss.

        The factory runs under the cache lock: per key, at most one
        solve ever happens no matter how many threads race for it.
        """
        with self._lock:
            if key in self._store:
                self._hits += 1
                self._store.move_to_end(key)
                return self._store[key]
            self._misses += 1
            value = factory()
            self._insert(key, value)
            return value

    def _insert(self, key: Hashable, value: Any) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self._maxsize:
            self._store.popitem(last=False)
            self._evictions += 1

    def peek(self, key: Hashable) -> Tuple[bool, Any]:
        """``(present, value)`` without touching counters or LRU order."""
        with self._lock:
            if key in self._store:
                return True, self._store[key]
            return False, None

    def keys(self) -> List[Hashable]:
        """The resident keys, LRU-first, without touching counters.

        Diagnostic hook for key-completeness checks: two configurations
        that must not alias can assert they occupy *distinct* entries
        (see the capacity topology-key regression tests)."""
        with self._lock:
            return list(self._store.keys())

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._store

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        stats = self.stats()
        return (
            f"LRUSolveCache({self.name!r}, size={stats.size}/"
            f"{stats.maxsize}, hits={stats.hits}, misses={stats.misses})"
        )

    # ------------------------------------------------------------------
    # Accounting and administration
    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._store),
                maxsize=self._maxsize,
            )

    def clear(self, *, reset_stats: bool = False) -> None:
        """Drop all entries (counters survive unless ``reset_stats``)."""
        with self._lock:
            self._store.clear()
            if reset_stats:
                self._hits = 0
                self._misses = 0
                self._evictions = 0

    def resize(self, maxsize: int) -> None:
        """Change capacity, evicting LRU entries if shrinking."""
        if maxsize < 1:
            raise ConfigurationError(
                f"cache maxsize must be >= 1, got {maxsize}"
            )
        with self._lock:
            self._maxsize = int(maxsize)
            while len(self._store) > self._maxsize:
                self._store.popitem(last=False)
                self._evictions += 1

    # ------------------------------------------------------------------
    # Cross-process seeding (used by the parallel sweep runner)
    # ------------------------------------------------------------------
    def snapshot(self) -> List[Tuple[Hashable, Any]]:
        """All entries, LRU-first, for shipping to worker processes."""
        with self._lock:
            return list(self._store.items())

    def seed(self, entries) -> None:
        """Insert precomputed ``(key, value)`` pairs without counting
        them as hits or misses (a seeded entry was solved elsewhere)."""
        with self._lock:
            for key, value in entries:
                self._insert(key, value)
