"""Closed-form conditional QoS model ``P(Y = y | k)`` (paper
Section 4.2.2, Eqs. (4)-(5) and Theorems 1-2).

Modelling assumptions, as in the paper:

* the signal is located at the centre line of a footprint trajectory at
  about 30 degrees latitude (worst case), so only one plane matters;
* signal occurrence is a Poisson process, hence the onset position is
  uniform over the footprint cycle ``[0, L1[k])``;
* signal duration is ``Exponential(mu)`` and the iterative geolocation
  computation time is ``Exponential(nu)``;
* delivering a level >= 1 result for any *detected* signal is always
  possible within the deadline (the preliminary result is enclosed in
  the alert message), so detection alone decides level 1 versus 0;
* no satellite fails between initial detection and the completion of
  the coordinated computation (the chain involves at most two
  satellites for ``tau < Tc``).

For an **overlapping** plane (``I[k] = 1``), Eq. (4) gives the level-3
probability under OAQ:

``G3[k] = (1/L1) [ INT_0^{Lhat} e^{-mu w} (1 - e^{-nu (tau - w)}) dw
+ L2 (1 - e^{-nu tau}) ]``   with ``Lhat = min(L1 - L2, tau)``,

where ``w`` is the waiting time for the overlapped footprints
(Theorem 1).  Under BAQ the first term disappears (no waiting):
``G3_BAQ[k] = (L2 / L1)(1 - e^{-nu tau})``.  Remaining mass is level 1.

For an **underlapping** plane (``I[k] = 0``), Theorem 2 yields the
OAQ level-2 probability

``G2[k] = (1/L1) INT_{L2}^{Ltilde} e^{-mu w} (1 - e^{-nu (tau - w)}) dw``
for ``tau > L2`` (else 0), with ``Ltilde = min(L1, tau)``,

where ``w`` is the wait for the next satellite.  The target is missed
(level 0) iff the signal starts in the gap and terminates before the
next footprint arrives:

``P(Y = 0 | k) = (1/L1) INT_0^{L2} (1 - e^{-mu w}) dw``.

Everything else is level 1.  The module also provides numerically
integrated variants for arbitrary signal-duration and computation-time
distributions (an extension beyond the paper's exponential
assumptions), which the closed forms are tested against.
"""

from __future__ import annotations

import math
from scipy import integrate

from repro.analytic.distributions import Distribution, Exponential
from repro.core.config import EvaluationParams
from repro.core.qos import QoSDistribution, QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.geometry.plane import PlaneGeometry
from repro.geometry.theorems import sequential_window, simultaneous_window

__all__ = [
    "window_success_integral",
    "g3_oaq",
    "g3_baq",
    "g2_oaq",
    "miss_probability",
    "conditional_distribution",
    "conditional_distribution_general",
]


def window_success_integral(
    mu: float, nu: float, tau: float, wait_lo: float, wait_hi: float
) -> float:
    """``INT_{wait_lo}^{wait_hi} e^{-mu w} (1 - e^{-nu (tau - w)}) dw``.

    The integrand is the probability that a signal survives the wait
    ``w`` for the opportunity to arrive, times the probability that the
    iterative computation then completes within the remaining
    ``tau - w`` minutes.  Requires ``0 <= wait_lo <= wait_hi <= tau``.
    """
    if not 0.0 <= wait_lo <= wait_hi:
        raise ConfigurationError(
            f"need 0 <= wait_lo <= wait_hi, got [{wait_lo}, {wait_hi}]"
        )
    if wait_hi > tau + 1e-12:
        raise ConfigurationError(
            f"wait_hi={wait_hi} exceeds the deadline tau={tau}: the window "
            "integral is only defined inside the deadline"
        )
    if mu < 0 or nu <= 0:
        raise ConfigurationError(f"need mu >= 0 and nu > 0, got mu={mu}, nu={nu}")
    if wait_hi == wait_lo:
        return 0.0

    # First part: survival of the signal over the wait.  expm1 keeps
    # the difference accurate for very small mu (where exp(-mu x)
    # values are all ~1 and would cancel catastrophically).  Once
    # mu * wait_hi itself underflows toward the subnormal range, the
    # expm1 difference loses all relative accuracy while dividing by mu
    # amplifies it, so take the mu -> 0 limit (error O(mu * wait_hi)).
    if mu == 0.0 or mu * wait_hi < 1e-280:
        part_survive = wait_hi - wait_lo
    else:
        part_survive = (
            math.expm1(-mu * wait_lo) - math.expm1(-mu * wait_hi)
        ) / mu

    # Second part: e^{-nu tau} INT e^{(nu - mu) w} dw, evaluated with the
    # exponents combined so large nu*tau never overflows:
    # exponent(w) = -nu (tau - w) - mu w  <= 0 for w <= tau.
    def _exponent(w: float) -> float:
        return -nu * (tau - w) - mu * w

    if math.isclose(mu, nu, rel_tol=1e-12, abs_tol=1e-15):
        part_fail = math.exp(-nu * tau) * (wait_hi - wait_lo)
    else:
        part_fail = (math.exp(_exponent(wait_hi)) - math.exp(_exponent(wait_lo))) / (
            nu - mu
        )
    return part_survive - part_fail


def _require_overlap(geometry: PlaneGeometry) -> None:
    if geometry.underlapping:
        raise ConfigurationError(
            f"plane with k={geometry.active_satellites} underlaps; "
            "level 3 (simultaneous dual coverage) is unreachable"
        )


def _require_underlap(geometry: PlaneGeometry) -> None:
    if geometry.overlapping:
        raise ConfigurationError(
            f"plane with k={geometry.active_satellites} overlaps; "
            "level 2 (sequential dual coverage) does not apply"
        )


def g3_oaq(geometry: PlaneGeometry, params: EvaluationParams) -> float:
    """``G3[k]`` (paper Eq. 4): probability of a level-3 result under
    OAQ, given an overlapping plane."""
    _require_overlap(geometry)
    window = simultaneous_window(geometry, params.tau)
    waiting = window_success_integral(
        params.mu, params.nu, params.tau, window.wait_lo, window.wait_hi
    )
    immediate = window.immediate_measure * -math.expm1(-params.nu * params.tau)
    return (waiting + immediate) / geometry.l1


def g3_baq(geometry: PlaneGeometry, params: EvaluationParams) -> float:
    """Level-3 probability under BAQ: the signal must *start* inside an
    overlapped region (no waiting) and the computation must complete by
    the deadline."""
    _require_overlap(geometry)
    return (geometry.l2 / geometry.l1) * -math.expm1(-params.nu * params.tau)


def g2_oaq(geometry: PlaneGeometry, params: EvaluationParams) -> float:
    """``G2[k]`` (Theorem 2): probability of a level-2 result
    (sequential dual coverage) under OAQ, given an underlapping plane."""
    _require_underlap(geometry)
    window = sequential_window(geometry, params.tau)
    if window.waiting_measure == 0.0:
        return 0.0
    return (
        window_success_integral(
            params.mu, params.nu, params.tau, window.wait_lo, window.wait_hi
        )
        / geometry.l1
    )


def miss_probability(geometry: PlaneGeometry, params: EvaluationParams) -> float:
    """``P(Y = 0 | k)``: the signal starts inside the coverage gap and
    terminates before the next footprint arrives.  Scheme-independent
    (detection is geometry, not policy); zero for overlapping planes."""
    if geometry.overlapping:
        return 0.0
    l2, mu = geometry.l2, params.mu
    if l2 == 0.0:
        return 0.0
    # INT_0^{L2} (1 - e^{-mu w}) dw = L2 - (1 - e^{-mu L2}) / mu
    integral = l2 - (-math.expm1(-mu * l2)) / mu
    return integral / geometry.l1


def conditional_distribution(
    geometry: PlaneGeometry, params: EvaluationParams, scheme: Scheme
) -> QoSDistribution:
    """``P(Y = y | k)`` for the given scheme (paper Eq. 5 and the
    analogous level-2/1/0 solutions)."""
    if geometry.overlapping:
        if scheme is Scheme.OAQ:
            p3 = g3_oaq(geometry, params)
        else:
            p3 = g3_baq(geometry, params)
        return QoSDistribution(
            {QoSLevel.SIMULTANEOUS_DUAL: p3, QoSLevel.SINGLE: 1.0 - p3}
        )
    p0 = miss_probability(geometry, params)
    p2 = g2_oaq(geometry, params) if scheme.supports_sequential_coverage else 0.0
    return QoSDistribution(
        {
            QoSLevel.SEQUENTIAL_DUAL: p2,
            QoSLevel.SINGLE: 1.0 - p0 - p2,
            QoSLevel.MISSED: p0,
        }
    )


def conditional_distribution_general(
    geometry: PlaneGeometry,
    deadline: float,
    signal_duration: Distribution,
    computation_time: Distribution,
    scheme: Scheme,
    *,
    quad_limit: int = 200,
) -> QoSDistribution:
    """``P(Y = y | k)`` for *arbitrary* signal-duration and
    computation-time distributions, by numerical integration.

    This generalises the paper's exponential assumptions.  For
    ``Exponential`` inputs it agrees with
    :func:`conditional_distribution` (verified by tests).
    """
    if deadline < 0:
        raise ConfigurationError(f"deadline must be >= 0, got {deadline}")

    def success(w: float) -> float:
        return signal_duration.survival(w) * computation_time.cdf(deadline - w)

    if geometry.overlapping:
        window = simultaneous_window(geometry, deadline)
        if scheme is Scheme.OAQ and window.waiting_measure > 0.0:
            waiting, _ = integrate.quad(
                success, window.wait_lo, window.wait_hi, limit=quad_limit
            )
        else:
            waiting = 0.0
        immediate = window.immediate_measure * computation_time.cdf(deadline)
        p3 = (waiting + immediate) / geometry.l1
        return QoSDistribution(
            {QoSLevel.SIMULTANEOUS_DUAL: p3, QoSLevel.SINGLE: 1.0 - p3}
        )

    # Underlapping plane.
    if geometry.l2 > 0.0:
        missed, _ = integrate.quad(
            lambda w: signal_duration.cdf(w), 0.0, geometry.l2, limit=quad_limit
        )
        p0 = missed / geometry.l1
    else:
        p0 = 0.0
    p2 = 0.0
    if scheme.supports_sequential_coverage:
        window = sequential_window(geometry, deadline)
        if window.waiting_measure > 0.0:
            value, _ = integrate.quad(
                success, window.wait_lo, window.wait_hi, limit=quad_limit
            )
            p2 = value / geometry.l1
    return QoSDistribution(
        {
            QoSLevel.SEQUENTIAL_DUAL: p2,
            QoSLevel.SINGLE: 1.0 - p0 - p2,
            QoSLevel.MISSED: p0,
        }
    )


def exponential_inputs(params: EvaluationParams) -> "tuple[Exponential, Exponential]":
    """The paper's exponential signal-duration and computation-time
    distributions for ``params`` (convenience for the general model)."""
    return Exponential(params.mu), Exponential(params.nu)
