"""Probability distributions used across the analytic and simulation code.

The paper assumes exponentially distributed signal durations (rate
``mu``) and iterative-computation times (rate ``nu``), and a Poisson
signal-occurrence process (hence uniform onset position over a cycle).
The SAN capacity model additionally needs deterministic timers, which
UltraSAN supported natively; we expose :class:`Deterministic` plus its
Erlang phase-type approximation (see :mod:`repro.san.phase_type`).

Only the handful of methods the library needs are implemented (pdf,
cdf, survival, mean, variance, sampling); scipy is deliberately not
wrapped so that hot simulation loops stay allocation-free.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "Distribution",
    "Exponential",
    "Deterministic",
    "Erlang",
    "Uniform",
    "Weibull",
    "HyperExponential",
]


class Distribution(ABC):
    """A non-negative continuous random variable."""

    @abstractmethod
    def pdf(self, x: float) -> float:
        """Probability density at ``x``."""

    @abstractmethod
    def cdf(self, x: float) -> float:
        """``P(X <= x)``."""

    def survival(self, x: float) -> float:
        """``P(X > x)``."""
        return 1.0 - self.cdf(x)

    @abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @abstractmethod
    def variance(self) -> float:
        """Variance."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one sample using ``rng``."""

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` samples; subclasses may vectorise."""
        return np.array([self.sample(rng) for _ in range(n)])


class Exponential(Distribution):
    """Exponential distribution with rate ``rate`` (mean ``1/rate``).

    ``rate == 0`` is the degenerate "never fires" limit: the event has
    probability zero of ever completing (``cdf == 0`` everywhere,
    samples are ``inf``).  Marking-dependent SAN rates hit exactly zero
    on design-sweep boundaries (e.g. a repair rate swept down to 0.0),
    and the zero-rate activity must stay a *rate* value -- not a
    structural change -- so assembled topologies re-rate in place.
    Negative rates are still rejected.
    """

    def __init__(self, rate: float):
        if rate < 0:
            raise ConfigurationError(f"rate must be >= 0, got {rate}")
        self.rate = float(rate)

    def pdf(self, x: float) -> float:
        if x < 0:
            return 0.0
        return self.rate * math.exp(-self.rate * x)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return -math.expm1(-self.rate * x)

    def survival(self, x: float) -> float:
        if x <= 0:
            return 1.0
        return math.exp(-self.rate * x)

    def mean(self) -> float:
        if self.rate == 0.0:
            return math.inf
        return 1.0 / self.rate

    def variance(self) -> float:
        if self.rate == 0.0:
            return math.inf
        return 1.0 / (self.rate * self.rate)

    def sample(self, rng: np.random.Generator) -> float:
        if self.rate == 0.0:
            return math.inf
        return float(rng.exponential(1.0 / self.rate))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.rate == 0.0:
            return np.full(n, math.inf)
        return rng.exponential(1.0 / self.rate, size=n)

    def __repr__(self) -> str:
        return f"Exponential(rate={self.rate!r})"


class Deterministic(Distribution):
    """Point mass at ``value`` (a deterministic timer)."""

    def __init__(self, value: float):
        if value < 0:
            raise ConfigurationError(f"value must be >= 0, got {value}")
        self.value = float(value)

    def pdf(self, x: float) -> float:
        return math.inf if x == self.value else 0.0

    def cdf(self, x: float) -> float:
        return 1.0 if x >= self.value else 0.0

    def mean(self) -> float:
        return self.value

    def variance(self) -> float:
        return 0.0

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    def __repr__(self) -> str:
        return f"Deterministic(value={self.value!r})"


class Erlang(Distribution):
    """Erlang distribution: sum of ``shape`` iid exponentials of rate
    ``rate``.  ``Erlang(n, n/d)`` approximates ``Deterministic(d)`` with
    squared coefficient of variation ``1/n``."""

    def __init__(self, shape: int, rate: float):
        if shape < 1 or int(shape) != shape:
            raise ConfigurationError(f"shape must be a positive integer, got {shape}")
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self.shape = int(shape)
        self.rate = float(rate)

    @classmethod
    def approximating(cls, value: float, stages: int) -> "Erlang":
        """Erlang approximation of ``Deterministic(value)`` with the
        given number of stages (matching the mean)."""
        if value <= 0:
            raise ConfigurationError(f"value must be positive, got {value}")
        return cls(shape=stages, rate=stages / value)

    def pdf(self, x: float) -> float:
        if x < 0:
            return 0.0
        k, lam = self.shape, self.rate
        return (lam**k) * x ** (k - 1) * math.exp(-lam * x) / math.factorial(k - 1)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        # 1 - sum_{i=0}^{k-1} e^{-lx} (lx)^i / i!
        lx = self.rate * x
        term = 1.0
        total = 1.0
        for i in range(1, self.shape):
            term *= lx / i
            total += term
        return 1.0 - math.exp(-lx) * total

    def mean(self) -> float:
        return self.shape / self.rate

    def variance(self) -> float:
        return self.shape / (self.rate * self.rate)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.shape, 1.0 / self.rate))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.shape, 1.0 / self.rate, size=n)

    def __repr__(self) -> str:
        return f"Erlang(shape={self.shape!r}, rate={self.rate!r})"


class Uniform(Distribution):
    """Uniform distribution on ``[low, high)``."""

    def __init__(self, low: float, high: float):
        if high <= low:
            raise ConfigurationError(f"need low < high, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def pdf(self, x: float) -> float:
        if self.low <= x < self.high:
            return 1.0 / (self.high - self.low)
        return 0.0

    def cdf(self, x: float) -> float:
        if x <= self.low:
            return 0.0
        if x >= self.high:
            return 1.0
        return (x - self.low) / (self.high - self.low)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def __repr__(self) -> str:
        return f"Uniform(low={self.low!r}, high={self.high!r})"


class Weibull(Distribution):
    """Weibull distribution (shape ``k``, scale ``lam``) -- offered as an
    extension beyond the paper's exponential assumption, e.g. for
    wear-out satellite failures or heavy-tailed signal durations."""

    def __init__(self, shape: float, scale: float):
        if shape <= 0 or scale <= 0:
            raise ConfigurationError(
                f"shape and scale must be positive, got {shape}, {scale}"
            )
        self.shape = float(shape)
        self.scale = float(scale)

    def pdf(self, x: float) -> float:
        if x < 0:
            return 0.0
        k, lam = self.shape, self.scale
        z = x / lam
        return (k / lam) * z ** (k - 1) * math.exp(-(z**k))

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return -math.expm1(-((x / self.scale) ** self.shape))

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)

    def __repr__(self) -> str:
        return f"Weibull(shape={self.shape!r}, scale={self.scale!r})"


class HyperExponential(Distribution):
    """Mixture of exponentials: with probability ``weights[i]`` the
    variable is ``Exponential(rates[i])``.  Models high-variance signal
    durations (bursty emitters)."""

    def __init__(self, rates, weights):
        rates = [float(r) for r in rates]
        weights = [float(w) for w in weights]
        if len(rates) != len(weights) or not rates:
            raise ConfigurationError("rates and weights must be equal-length, non-empty")
        if any(r <= 0 for r in rates):
            raise ConfigurationError(f"all rates must be positive, got {rates}")
        if any(w < 0 for w in weights) or abs(sum(weights) - 1.0) > 1e-9:
            raise ConfigurationError(f"weights must be a distribution, got {weights}")
        self.rates = rates
        self.weights = weights

    def pdf(self, x: float) -> float:
        if x < 0:
            return 0.0
        return sum(w * r * math.exp(-r * x) for r, w in zip(self.rates, self.weights))

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return sum(
            w * -math.expm1(-r * x) for r, w in zip(self.rates, self.weights)
        )

    def mean(self) -> float:
        return sum(w / r for r, w in zip(self.rates, self.weights))

    def variance(self) -> float:
        second = sum(2.0 * w / (r * r) for r, w in zip(self.rates, self.weights))
        return second - self.mean() ** 2

    def sample(self, rng: np.random.Generator) -> float:
        idx = rng.choice(len(self.rates), p=self.weights)
        return float(rng.exponential(1.0 / self.rates[idx]))

    def __repr__(self) -> str:
        return f"HyperExponential(rates={self.rates!r}, weights={self.weights!r})"
