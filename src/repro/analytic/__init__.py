"""Analytic models of the paper's Section 4: closed-form conditional
QoS distributions, the SAN-based orbital-plane capacity model, and the
Eq. (3) composition."""

from repro.analytic.capacity import (
    CapacityModelConfig,
    build_capacity_san,
    capacity_cache_stats,
    capacity_caches_disabled,
    capacity_distribution,
    capacity_distribution_exponential,
    capacity_distribution_simulated,
    capacity_transient,
    clear_capacity_caches,
    configure_capacity_caches,
)
from repro.analytic.solve_cache import CacheStats, LRUSolveCache
from repro.analytic.composition import compose, composed_distribution
from repro.analytic.multiplane import best_of_planes, multi_plane_distribution
from repro.analytic.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    HyperExponential,
    Uniform,
    Weibull,
)
from repro.analytic.qos_model import (
    conditional_distribution,
    conditional_distribution_general,
    g2_oaq,
    g3_baq,
    g3_oaq,
    miss_probability,
    window_success_integral,
)

__all__ = [
    "CacheStats",
    "CapacityModelConfig",
    "Deterministic",
    "Distribution",
    "Erlang",
    "Exponential",
    "HyperExponential",
    "LRUSolveCache",
    "Uniform",
    "Weibull",
    "build_capacity_san",
    "capacity_cache_stats",
    "capacity_caches_disabled",
    "capacity_distribution",
    "capacity_distribution_exponential",
    "capacity_distribution_simulated",
    "capacity_transient",
    "clear_capacity_caches",
    "configure_capacity_caches",
    "best_of_planes",
    "compose",
    "composed_distribution",
    "conditional_distribution",
    "conditional_distribution_general",
    "g2_oaq",
    "g3_baq",
    "g3_oaq",
    "miss_probability",
    "multi_plane_distribution",
    "window_success_integral",
]
