"""Multi-plane QoS composition (extension).

The paper's measure is deliberately conservative: the signal sits on
the centre line of *one* plane's footprint trajectory, where (at ~30
degrees latitude) neighbouring planes' footprints do not help.  Off
the centre line -- and especially at higher latitudes (see the
``orbits-latitude`` experiment) -- a target is covered by the
trajectories of **several** planes, each degrading independently
(there are no shared spares between planes, Section 4.2.2).

Under that independence, if each covering plane would deliver quality
``Y_p``, the constellation delivers ``max_p Y_p``: alert consumers act
on the best result.  This module computes that distribution, bounding
how much better than the paper's worst case the off-centre-line
service is.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import EvaluationParams
from repro.core.qos import QoSDistribution, QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError

__all__ = ["best_of_planes", "multi_plane_distribution"]


def best_of_planes(distributions: Sequence[QoSDistribution]) -> QoSDistribution:
    """Distribution of ``max_p Y_p`` for independent planes.

    ``P(max <= y) = prod_p P(Y_p <= y)``; the pmf follows by
    differencing the cdf over the (finite) level set.
    """
    distributions = list(distributions)
    if not distributions:
        raise ConfigurationError("best_of_planes needs at least one plane")
    levels = sorted(QoSLevel)
    cdf = []
    for level in levels:
        product = 1.0
        for dist in distributions:
            at_most = sum(dist[lv] for lv in levels if lv <= level)
            product *= at_most
        cdf.append(product)
    pmf = {}
    previous = 0.0
    for level, value in zip(levels, cdf):
        pmf[level] = max(0.0, value - previous)
        previous = value
    return QoSDistribution(pmf)


def multi_plane_distribution(
    params: EvaluationParams,
    scheme: Scheme,
    *,
    covering_planes: int = 2,
    capacity_stages: int = 24,
) -> QoSDistribution:
    """``P(max_p Y_p = y)`` for ``covering_planes`` i.i.d. planes, each
    evaluated with the full Eq. (3) pipeline."""
    if covering_planes < 1:
        raise ConfigurationError(
            f"covering_planes must be >= 1, got {covering_planes}"
        )
    from repro.core.framework import OAQFramework

    single = OAQFramework(
        params, capacity_stages=capacity_stages
    ).qos_distribution(scheme)
    return best_of_planes([single] * covering_planes)
