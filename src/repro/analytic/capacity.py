"""Orbital-plane capacity model ``P(k)`` (paper Section 4.2.2, Fig. 7).

The paper computes the steady-state probability that an orbital plane
has ``k`` active operational satellites with an UltraSAN model of the
plane's degradation and spare-deployment behaviour.  Steady-state
analysis is justified because signal occurrence is Poisson (PASTA).
We rebuild that model on :mod:`repro.san`:

* the plane starts with 14 active satellites and 2 in-orbit spares;
* each active satellite fails independently at rate ``lambda`` (the
  exponential ``failure`` activity has the marking-dependent rate
  ``k * lambda``);
* an in-orbit spare replaces a failed satellite immediately while
  spares remain (instantaneous ``deploy_in_orbit_spare``);
* the **threshold-triggered ground-spare deployment policy** keeps the
  plane from operating below the threshold ``eta``: when the capacity
  would drop below ``eta`` (spares exhausted), a replacement ground
  spare is launched, arriving after a deterministic
  ``replacement latency``.  The paper motivates this reading -- "the
  threshold-triggered ground-spare deployment policy prevents the
  scenario in which the plane's capacity drops below the threshold from
  happening" (Section 4.3) -- and it is the only policy structure we
  found that reproduces Fig. 7's shape (``P(eta)`` dominant at high
  ``lambda``, ``P(eta - 1)`` small but reachable) *and* Fig. 9's
  OAQ/BAQ anchor values simultaneously;
* the **scheduled ground-spare deployment policy** restores the plane
  to its original capacity (14 active + 2 in-orbit spares) every
  ``phi`` hours (deterministic clock).

The paper does not publish the replacement latency; the default
(168 hours) is our calibration -- see EXPERIMENTS.md for the
sensitivity study.

Solution paths:

* :func:`capacity_distribution` -- numerical: reachability graph,
  Erlang phase-type unfolding of the two deterministic timers,
  sparse steady-state solve;
* :func:`capacity_distribution_simulated` -- discrete-event simulation
  of the same SAN with *exact* deterministic timers (cross-check);
* :func:`capacity_distribution_exponential` -- all-exponential variant
  (timers replaced by exponentials of equal mean), the crudest
  approximation, used in the ablation benchmark.

The numerical paths are **memoized**: ``P(k)`` depends only on the
frozen :class:`CapacityModelConfig` and the stage count, so sweeps over
``tau`` / ``mu`` (and repeated figure regenerations) reuse one solve
per distinct key.  Both the final distributions and the intermediate
reachability/unfold structures are cached in module-level
:class:`~repro.analytic.solve_cache.LRUSolveCache` instances;
:func:`capacity_cache_stats` exposes hit/miss counters for tests and
benchmarks, :func:`capacity_caches_disabled` restores the seed's
solve-per-call behaviour for baseline measurements.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.analytic.distributions import Deterministic, Exponential
from repro.analytic.solve_cache import CacheStats, LRUSolveCache
from repro.core.config import EvaluationParams
from repro.errors import ConfigurationError
from repro.san import (
    Case,
    InputGate,
    InstantaneousActivity,
    OutputGate,
    Place,
    SANModel,
    SANSimulator,
    TimedActivity,
    from_state_space,
    generate,
    steady_state_marking_distribution,
    unfold,
)

__all__ = [
    "CapacityModelConfig",
    "build_capacity_san",
    "capacity_distribution",
    "capacity_distribution_simulated",
    "capacity_distribution_exponential",
    "capacity_transient",
    "capacity_cache_stats",
    "capacity_cache_snapshot",
    "capacity_caches_disabled",
    "clear_capacity_caches",
    "configure_capacity_caches",
    "seed_capacity_cache",
]


@dataclass(frozen=True)
class CapacityModelConfig:
    """Parameters of the orbital-plane capacity model.

    Attributes
    ----------
    full_capacity:
        Active satellites when the plane is at its original capacity
        (14).
    in_orbit_spares:
        In-orbit spares available for immediate replacement (2).
    failure_rate_per_hour:
        Per-satellite failure rate ``lambda``.
    threshold:
        ``eta`` -- the plane is sustained at this capacity by the
        threshold-triggered ground-spare deployment policy.
    scheduled_period_hours:
        ``phi`` -- period of the scheduled full restore.
    replacement_latency_hours:
        Launch-to-arrival latency of a threshold-triggered replacement
        ground spare (not published in the paper; calibrated).
    """

    full_capacity: int = 14
    in_orbit_spares: int = 2
    failure_rate_per_hour: float = 1e-5
    threshold: int = 10
    scheduled_period_hours: float = 30000.0
    replacement_latency_hours: float = 168.0

    def __post_init__(self) -> None:
        if self.full_capacity < 1:
            raise ConfigurationError(
                f"full_capacity must be >= 1, got {self.full_capacity}"
            )
        if self.in_orbit_spares < 0:
            raise ConfigurationError(
                f"in_orbit_spares must be >= 0, got {self.in_orbit_spares}"
            )
        if self.failure_rate_per_hour <= 0:
            raise ConfigurationError(
                f"failure_rate_per_hour must be positive, got "
                f"{self.failure_rate_per_hour}"
            )
        if not 1 <= self.threshold <= self.full_capacity:
            raise ConfigurationError(
                f"threshold must be in [1, {self.full_capacity}], got "
                f"{self.threshold}"
            )
        if self.scheduled_period_hours <= 0:
            raise ConfigurationError(
                f"scheduled_period_hours must be positive, got "
                f"{self.scheduled_period_hours}"
            )
        if self.replacement_latency_hours <= 0:
            raise ConfigurationError(
                f"replacement_latency_hours must be positive, got "
                f"{self.replacement_latency_hours}"
            )

    @classmethod
    def from_params(cls, params: EvaluationParams) -> "CapacityModelConfig":
        """Build from an :class:`EvaluationParams` (Fig. 7-9 sweeps)."""
        return cls(
            full_capacity=params.constellation.active_per_plane,
            in_orbit_spares=params.constellation.in_orbit_spares_per_plane,
            failure_rate_per_hour=params.lam,
            threshold=params.eta,
            scheduled_period_hours=params.phi,
            replacement_latency_hours=params.replacement_latency_hours,
        )


def build_capacity_san(
    config: CapacityModelConfig, *, exponential_timers: bool = False
) -> SANModel:
    """Construct the orbital-plane SAN.

    Places: ``active`` (operational satellites in service), ``spares``
    (in-orbit spares), ``pending`` (threshold-triggered replacement
    launches in flight).

    Setting ``exponential_timers`` replaces the deterministic scheduled
    clock and replacement latency with exponentials of the same mean
    (used by the ablation study).
    """
    full = config.full_capacity
    eta = config.threshold

    places = [
        Place("active", full),
        Place("spares", config.in_orbit_spares),
        Place("pending", 0),
    ]

    failure = TimedActivity.exponential(
        "failure",
        lambda m: config.failure_rate_per_hour * m["active"],
        input_arcs={"active": 1},
    )

    def restore_full(m) -> None:
        m["active"] = full
        m["spares"] = config.in_orbit_spares
        m["pending"] = 0

    if exponential_timers:
        scheduled_dist = Exponential(1.0 / config.scheduled_period_hours)
        replacement_dist = Exponential(1.0 / config.replacement_latency_hours)
    else:
        scheduled_dist = Deterministic(config.scheduled_period_hours)
        replacement_dist = Deterministic(config.replacement_latency_hours)

    scheduled = TimedActivity(
        "scheduled_deployment",
        scheduled_dist,
        input_gates=[
            # Always enabled: the launch schedule is a free-running clock.
            InputGate("always", predicate=lambda m: True),
        ],
        cases=[
            # Restore to original capacity; in-flight replacements are
            # superseded by the full restore.
            Case(
                output_gates=[OutputGate("restore_full", restore_full)]
            )
        ],
    )

    replacement_arrival = TimedActivity(
        "replacement_arrival",
        replacement_dist,
        input_arcs={"pending": 1},
        cases=[
            Case(
                output_arcs={"active": 1}
            )
        ],
    )

    deploy_spare = InstantaneousActivity(
        "deploy_in_orbit_spare",
        priority=2,
        input_arcs={"spares": 1},
        input_gates=[
            InputGate("slot_open", predicate=lambda m: m["active"] < full)
        ],
        cases=[
            Case(
                output_arcs={"active": 1}
            )
        ],
    )

    threshold_trigger = InstantaneousActivity(
        "threshold_trigger",
        priority=1,
        input_gates=[
            InputGate(
                "below_threshold",
                predicate=lambda m: (
                    m["spares"] == 0 and m["active"] + m["pending"] < eta
                ),
            )
        ],
        cases=[
            Case(
                output_arcs={"pending": 1}
            )
        ],
    )

    return SANModel(
        places,
        timed_activities=[failure, scheduled, replacement_arrival],
        instantaneous_activities=[deploy_spare, threshold_trigger],
        name="orbital-plane-capacity",
    )


# ----------------------------------------------------------------------
# Memoization layer
# ----------------------------------------------------------------------
# Final P(k) dictionaries are tiny; the unfolded chains are not, so the
# structural cache is kept small.  Distribution keys are
# (config, stages, variant); unfold keys are (config, stages).
_DISTRIBUTION_CACHE = LRUSolveCache(maxsize=256, name="capacity-distribution")
_UNFOLD_CACHE = LRUSolveCache(maxsize=8, name="capacity-unfold")
_CACHING_ENABLED = True


def capacity_cache_stats() -> Dict[str, CacheStats]:
    """Hit/miss/eviction counters of both capacity caches.

    ``distribution`` misses count actual steady-state solves, the
    quantity the experiment engine's tests pin down ("a 9-point tau
    sweep performs exactly one capacity solve").
    """
    return {
        "distribution": _DISTRIBUTION_CACHE.stats(),
        "unfold": _UNFOLD_CACHE.stats(),
    }


def clear_capacity_caches(*, reset_stats: bool = False) -> None:
    """Drop all cached solves (counters survive unless asked not to)."""
    _DISTRIBUTION_CACHE.clear(reset_stats=reset_stats)
    _UNFOLD_CACHE.clear(reset_stats=reset_stats)


def configure_capacity_caches(
    *,
    distribution_maxsize: Optional[int] = None,
    unfold_maxsize: Optional[int] = None,
) -> None:
    """Resize the caches (evicting LRU entries when shrinking)."""
    if distribution_maxsize is not None:
        _DISTRIBUTION_CACHE.resize(distribution_maxsize)
    if unfold_maxsize is not None:
        _UNFOLD_CACHE.resize(unfold_maxsize)


def capacity_cache_snapshot():
    """The distribution cache's ``(key, P(k))`` entries -- what the
    parallel sweep runner ships to worker processes so a shared solve
    is not repeated per worker."""
    return _DISTRIBUTION_CACHE.snapshot()


def seed_capacity_cache(entries) -> None:
    """Install precomputed distribution entries (worker-side)."""
    _DISTRIBUTION_CACHE.seed(entries)


@contextmanager
def capacity_caches_disabled() -> Iterator[None]:
    """Temporarily restore solve-per-call behaviour (benchmark
    baselines).  Not safe under concurrent use from other threads."""
    global _CACHING_ENABLED
    previous = _CACHING_ENABLED
    _CACHING_ENABLED = False
    try:
        yield
    finally:
        _CACHING_ENABLED = previous


def _memoized(cache: LRUSolveCache, key, factory):
    if not _CACHING_ENABLED:
        return factory()
    return cache.get_or_compute(key, factory)


def _unfolded_chain(config: CapacityModelConfig, stages: int):
    """Cached (model, space, chain) triple for the deterministic-timer
    SAN -- shared by the steady-state and transient solution paths."""

    def build():
        model = build_capacity_san(config)
        space = generate(model)
        chain = unfold(space, stages=stages)
        return model, space, chain

    return _memoized(_UNFOLD_CACHE, (config, stages), build)


def _marking_capacity_distribution(marking_probs, model: SANModel) -> Dict[int, float]:
    position = model.place_index.position("active")
    result: Dict[int, float] = {}
    for marking, probability in marking_probs.items():
        k = marking[position]
        result[k] = result.get(k, 0.0) + probability
    return {k: result[k] for k in sorted(result)}


def capacity_distribution(
    config: CapacityModelConfig, *, stages: int = 24
) -> Dict[int, float]:
    """Steady-state ``P(k)`` by phase-type unfolding of the SAN.

    ``stages`` controls the Erlang approximation of the two
    deterministic timers; 24 keeps the error well under simulation
    noise for the paper's parameter ranges (see the ablation
    benchmark).

    Memoized on ``(config, stages)``: repeated calls return the cached
    distribution without re-running the SAN pipeline.
    """

    def solve() -> Dict[int, float]:
        model, space, chain = _unfolded_chain(config, stages)
        by_marking_index = chain.steady_state_markings()
        marking_probs = {
            space.markings[idx]: prob
            for idx, prob in by_marking_index.items()
        }
        return _marking_capacity_distribution(marking_probs, model)

    result = _memoized(_DISTRIBUTION_CACHE, (config, stages, "erlang"), solve)
    return dict(result)


def capacity_distribution_exponential(
    config: CapacityModelConfig,
) -> Dict[int, float]:
    """Steady-state ``P(k)`` with all timers exponentialised (ablation
    baseline: what you get without deterministic-activity support).
    Memoized like :func:`capacity_distribution`."""

    def solve() -> Dict[int, float]:
        model = build_capacity_san(config, exponential_timers=True)
        space = generate(model)
        ctmc = from_state_space(space)
        pi = ctmc.steady_state()
        marking_probs = steady_state_marking_distribution(space, pi)
        return _marking_capacity_distribution(marking_probs, model)

    result = _memoized(
        _DISTRIBUTION_CACHE, (config, None, "exponential"), solve
    )
    return dict(result)


def capacity_distribution_simulated(
    config: CapacityModelConfig,
    *,
    horizon_hours: float = 3.0e6,
    warmup_hours: float = 1.0e5,
    seed: Optional[int] = None,
) -> Dict[int, float]:
    """Steady-state ``P(k)`` estimated by discrete-event simulation of
    the SAN with exact deterministic timers."""
    model = build_capacity_san(config)
    simulator = SANSimulator(model, seed=seed)
    result = simulator.run(horizon_hours, warmup=warmup_hours, rewards={})
    position = model.place_index.position("active")
    distribution: Dict[int, float] = {}
    for marking, fraction in result.marking_occupancy.items():
        k = marking[position]
        distribution[k] = distribution.get(k, 0.0) + fraction
    return {k: distribution[k] for k in sorted(distribution)}


def capacity_transient(
    config: CapacityModelConfig,
    times,
    *,
    stages: int = 16,
) -> "Dict[float, Dict[int, float]]":
    """Time-dependent capacity distribution ``P(k at t)`` (hours),
    starting from a freshly deployed plane (14 active + 2 spares).

    An extension beyond the paper's steady-state evaluation (PASTA
    justified steady state there): useful for questions like "how
    degraded is the constellation likely to be halfway through a
    scheduled-deployment period?".  Solved by uniformisation on the
    phase-type-unfolded chain (cached, so evaluating more time points
    later reuses the structural work).
    """
    model, space, chain = _unfolded_chain(config, stages)
    position = model.place_index.position("active")
    results: Dict[float, Dict[int, float]] = {}
    for t in times:
        probabilities = chain.ctmc.transient(float(t))
        by_marking = chain.marginalise(probabilities)
        distribution: Dict[int, float] = {}
        for marking_index, probability in by_marking.items():
            k = space.markings[marking_index][position]
            distribution[k] = distribution.get(k, 0.0) + probability
        results[float(t)] = {k: distribution[k] for k in sorted(distribution)}
    return results
