"""Orbital-plane capacity model ``P(k)`` (paper Section 4.2.2, Fig. 7).

The paper computes the steady-state probability that an orbital plane
has ``k`` active operational satellites with an UltraSAN model of the
plane's degradation and spare-deployment behaviour.  Steady-state
analysis is justified because signal occurrence is Poisson (PASTA).
We rebuild that model on :mod:`repro.san`:

* the plane starts with 14 active satellites and 2 in-orbit spares;
* each active satellite fails independently at rate ``lambda`` (the
  exponential ``failure`` activity has the marking-dependent rate
  ``k * lambda``);
* an in-orbit spare replaces a failed satellite immediately while
  spares remain (instantaneous ``deploy_in_orbit_spare``);
* the **threshold-triggered ground-spare deployment policy** keeps the
  plane from operating below the threshold ``eta``: when the capacity
  would drop below ``eta`` (spares exhausted), a replacement ground
  spare is launched, arriving after a deterministic
  ``replacement latency``.  The paper motivates this reading -- "the
  threshold-triggered ground-spare deployment policy prevents the
  scenario in which the plane's capacity drops below the threshold from
  happening" (Section 4.3) -- and it is the only policy structure we
  found that reproduces Fig. 7's shape (``P(eta)`` dominant at high
  ``lambda``, ``P(eta - 1)`` small but reachable) *and* Fig. 9's
  OAQ/BAQ anchor values simultaneously;
* the **scheduled ground-spare deployment policy** restores the plane
  to its original capacity (14 active + 2 in-orbit spares) every
  ``phi`` hours (deterministic clock).

The paper does not publish the replacement latency; the default
(168 hours) is our calibration -- see EXPERIMENTS.md for the
sensitivity study.

Solution paths:

* :func:`capacity_distribution` -- numerical: reachability graph,
  Erlang phase-type unfolding of the two deterministic timers,
  sparse steady-state solve;
* :func:`capacity_distribution_simulated` -- discrete-event simulation
  of the same SAN with *exact* deterministic timers (cross-check);
* :func:`capacity_distribution_exponential` -- all-exponential variant
  (timers replaced by exponentials of equal mean), the crudest
  approximation, used in the ablation benchmark.

The numerical paths are **memoized**: ``P(k)`` depends only on the
frozen :class:`CapacityModelConfig` and the stage count, so sweeps over
``tau`` / ``mu`` (and repeated figure regenerations) reuse one solve
per distinct key.  Both the final distributions and the intermediate
structures are cached in module-level
:class:`~repro.analytic.solve_cache.LRUSolveCache` instances;
:func:`capacity_cache_stats` exposes hit/miss counters for tests and
benchmarks, :func:`capacity_caches_disabled` restores the seed's
solve-per-call behaviour for baseline measurements.

Sweeps varying a *rate* (failure rate ``lambda``, the period ``phi``,
the replacement latency) additionally exploit the **topology/rate
split** (:mod:`repro.san.assembled`): the expensive reachability +
unfolding structure is cached per *topology*
(:func:`assemble_capacity_topology`), each parameter point re-rates the
arrays in microseconds, and successive steady states on one topology
are warm-started iterative solves seeded from the previous point's
``pi`` (with automatic fallback to the direct factorisation).
:func:`capacity_stage_timings` and :func:`capacity_solver_stats`
expose the per-stage costs and solve-method counters.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.analytic.distributions import Deterministic, Exponential
from repro.analytic.solve_cache import CacheStats, LRUSolveCache
from repro.core.config import EvaluationParams
from repro.errors import ConfigurationError, ModelError
from repro.san import (
    AssembledChain,
    Case,
    InputGate,
    InstantaneousActivity,
    LumpedStateSpace,
    OutputGate,
    Place,
    SANModel,
    SANSimulator,
    SteadyStateWarmStart,
    TimedActivity,
    assemble,
    from_state_space,
    generate,
    lumped_state_space,
    steady_state_marking_distribution,
    unfold,
)

__all__ = [
    "CapacityModelConfig",
    "assemble_capacity_topology",
    "build_capacity_san",
    "build_capacity_san_expanded",
    "capacity_distribution",
    "capacity_distribution_expanded",
    "capacity_distribution_simulated",
    "capacity_distribution_exponential",
    "capacity_transient",
    "capacity_cross_check",
    "capacity_cache_stats",
    "capacity_cache_snapshot",
    "capacity_caches_disabled",
    "capacity_solver_stats",
    "capacity_stage_timings",
    "capacity_topology_key",
    "clear_capacity_caches",
    "configure_capacity_caches",
    "expanded_capacity_summary",
    "seed_capacity_cache",
]


#: Valid ``deployment_policy`` values: which ground-spare deployment
#: machinery the SAN contains (a structural choice, see the topology
#: key).
_DEPLOYMENT_POLICIES = frozenset({"combined", "threshold", "scheduled"})


@dataclass(frozen=True)
class CapacityModelConfig:
    """Parameters of the orbital-plane capacity model.

    Attributes
    ----------
    full_capacity:
        Active satellites when the plane is at its original capacity
        (14).
    in_orbit_spares:
        In-orbit spares available for immediate replacement (2).
    failure_rate_per_hour:
        Per-satellite failure rate ``lambda``.
    threshold:
        ``eta`` -- the plane is sustained at this capacity by the
        threshold-triggered ground-spare deployment policy.
    scheduled_period_hours:
        ``phi`` -- period of the scheduled full restore.
    replacement_latency_hours:
        Launch-to-arrival latency of a threshold-triggered replacement
        ground spare (not published in the paper; calibrated).
    deployment_policy:
        Which ground-spare deployment machinery the plane runs --
        ``"combined"`` (the paper's model: both policies active, the
        default), ``"threshold"`` (no scheduled restore clock) or
        ``"scheduled"`` (no threshold trigger).  This is a *structural*
        choice: it adds or removes activities, so it is part of the
        topology key and two policies never share an assembled chain.
    repair_rate_per_hour:
        Optional on-orbit repair/servicing: each failed satellite is
        independently restored to service at this exponential rate.
        ``None`` (the default) omits the repair activity entirely
        (structural absence); a float -- **including exactly 0.0** --
        keeps the activity in the topology at that rate, so a design
        sweep crossing zero stays on one assembled structure and
        re-rates in place (zero-rate transitions are dropped by the
        CTMC, never by the topology).
    """

    full_capacity: int = 14
    in_orbit_spares: int = 2
    failure_rate_per_hour: float = 1e-5
    threshold: int = 10
    scheduled_period_hours: float = 30000.0
    replacement_latency_hours: float = 168.0
    deployment_policy: str = "combined"
    repair_rate_per_hour: Optional[float] = None

    def __post_init__(self) -> None:
        if self.full_capacity < 1:
            raise ConfigurationError(
                f"full_capacity must be >= 1, got {self.full_capacity}"
            )
        if self.in_orbit_spares < 0:
            raise ConfigurationError(
                f"in_orbit_spares must be >= 0, got {self.in_orbit_spares}"
            )
        if self.failure_rate_per_hour <= 0:
            raise ConfigurationError(
                f"failure_rate_per_hour must be positive, got "
                f"{self.failure_rate_per_hour}"
            )
        if not 1 <= self.threshold <= self.full_capacity:
            raise ConfigurationError(
                f"threshold must be in [1, {self.full_capacity}], got "
                f"{self.threshold}"
            )
        if self.scheduled_period_hours <= 0:
            raise ConfigurationError(
                f"scheduled_period_hours must be positive, got "
                f"{self.scheduled_period_hours}"
            )
        if self.replacement_latency_hours <= 0:
            raise ConfigurationError(
                f"replacement_latency_hours must be positive, got "
                f"{self.replacement_latency_hours}"
            )
        if self.deployment_policy not in _DEPLOYMENT_POLICIES:
            raise ConfigurationError(
                f"deployment_policy must be one of "
                f"{sorted(_DEPLOYMENT_POLICIES)}, got "
                f"{self.deployment_policy!r}"
            )
        if self.repair_rate_per_hour is not None and (
            self.repair_rate_per_hour < 0
        ):
            raise ConfigurationError(
                f"repair_rate_per_hour must be >= 0 (or None to omit "
                f"repair), got {self.repair_rate_per_hour}"
            )

    @classmethod
    def from_params(cls, params: EvaluationParams) -> "CapacityModelConfig":
        """Build from an :class:`EvaluationParams` (Fig. 7-9 sweeps)."""
        return cls(
            full_capacity=params.constellation.active_per_plane,
            in_orbit_spares=params.constellation.in_orbit_spares_per_plane,
            failure_rate_per_hour=params.lam,
            threshold=params.eta,
            scheduled_period_hours=params.phi,
            replacement_latency_hours=params.replacement_latency_hours,
        )


def build_capacity_san(
    config: CapacityModelConfig, *, exponential_timers: bool = False
) -> SANModel:
    """Construct the orbital-plane SAN.

    Places: ``active`` (operational satellites in service), ``spares``
    (in-orbit spares), ``pending`` (threshold-triggered replacement
    launches in flight).

    Setting ``exponential_timers`` replaces the deterministic scheduled
    clock and replacement latency with exponentials of the same mean
    (used by the ablation study).

    ``config.deployment_policy`` selects the ground-spare machinery:
    ``"threshold"`` drops the scheduled clock, ``"scheduled"`` drops
    the threshold trigger, ``"combined"`` (default) keeps both.  A
    non-``None`` ``config.repair_rate_per_hour`` adds an on-orbit
    ``repair`` activity restoring failed satellites to service at
    ``rho * (full - active)``.
    """
    full = config.full_capacity
    eta = config.threshold
    policy = config.deployment_policy

    places = [
        Place("active", full),
        Place("spares", config.in_orbit_spares),
        Place("pending", 0),
    ]

    failure = TimedActivity.exponential(
        "failure",
        lambda m: config.failure_rate_per_hour * m["active"],
        input_arcs={"active": 1},
    )

    def restore_full(m) -> None:
        m["active"] = full
        m["spares"] = config.in_orbit_spares
        m["pending"] = 0

    if exponential_timers:
        scheduled_dist = Exponential(1.0 / config.scheduled_period_hours)
        replacement_dist = Exponential(1.0 / config.replacement_latency_hours)
    else:
        scheduled_dist = Deterministic(config.scheduled_period_hours)
        replacement_dist = Deterministic(config.replacement_latency_hours)

    scheduled = TimedActivity(
        "scheduled_deployment",
        scheduled_dist,
        input_gates=[
            # Always enabled: the launch schedule is a free-running clock.
            InputGate("always", predicate=lambda m: True),
        ],
        cases=[
            # Restore to original capacity; in-flight replacements are
            # superseded by the full restore.
            Case(
                output_gates=[OutputGate("restore_full", restore_full)]
            )
        ],
    )

    if config.repair_rate_per_hour is None:
        arrival_cases = [Case(output_arcs={"active": 1})]
    else:
        # With on-orbit repair the failed satellite may already be back
        # in service when the replacement arrives; the late spare is
        # then discarded (the launch was wasted).  Unreachable without
        # repair, so the plain-arc case above keeps the no-repair
        # topology identical to the paper's model.
        def arrive_or_discard(m) -> None:
            if m["active"] < full:
                m["active"] += 1

        arrival_cases = [
            Case(output_gates=[OutputGate("arrive_or_discard", arrive_or_discard)])
        ]

    replacement_arrival = TimedActivity(
        "replacement_arrival",
        replacement_dist,
        input_arcs={"pending": 1},
        cases=arrival_cases,
    )

    deploy_spare = InstantaneousActivity(
        "deploy_in_orbit_spare",
        priority=2,
        input_arcs={"spares": 1},
        input_gates=[
            InputGate("slot_open", predicate=lambda m: m["active"] < full)
        ],
        cases=[
            Case(
                output_arcs={"active": 1}
            )
        ],
    )

    threshold_trigger = InstantaneousActivity(
        "threshold_trigger",
        priority=1,
        input_gates=[
            InputGate(
                "below_threshold",
                predicate=lambda m: (
                    m["spares"] == 0 and m["active"] + m["pending"] < eta
                ),
            )
        ],
        cases=[
            Case(
                output_arcs={"pending": 1}
            )
        ],
    )

    timed = [failure]
    if policy in ("combined", "scheduled"):
        timed.append(scheduled)
    timed.append(replacement_arrival)
    if config.repair_rate_per_hour is not None:
        timed.append(
            TimedActivity.exponential(
                "repair",
                lambda m: config.repair_rate_per_hour * (full - m["active"]),
                input_gates=[
                    InputGate(
                        "repairable", predicate=lambda m: m["active"] < full
                    )
                ],
                cases=[Case(output_arcs={"active": 1})],
            )
        )
    instantaneous = [deploy_spare]
    if policy in ("combined", "threshold"):
        instantaneous.append(threshold_trigger)
    return SANModel(
        places,
        timed_activities=timed,
        instantaneous_activities=instantaneous,
        name="orbital-plane-capacity",
    )


def _satellite_names(full: int) -> Tuple[str, ...]:
    return tuple(f"sat_{i}" for i in range(1, full + 1))


def build_capacity_san_expanded(config: CapacityModelConfig) -> SANModel:
    """The *per-satellite* formulation of the orbital-plane SAN.

    Instead of one counter place ``active``, every satellite gets its
    own binary place ``sat_i`` -- the natural formulation when
    satellites carry identity (per-satellite rewards, heterogeneous
    extensions) and the stress test for state lumping: the tangible
    state space is exponential in the satellite count
    (:math:`2^{\\text{full}} + \\text{spares}` markings versus the
    counted model's handful), but every permutation of the identical
    satellites is a symmetry, declared via ``exchangeable_groups`` and
    collapsed exactly by :mod:`repro.san.lumping`.  The quotient is the
    counted model's chain, so ``P(k)`` matches
    :func:`capacity_distribution` to solver precision.

    Repairs (spare deployment, replacement arrival) pick the satellite
    to restore *uniformly among the failed ones* -- the choice is
    probabilistically irrelevant for identical satellites, and the
    uniform tie-break is what keeps the model exactly symmetric (a
    deterministic "lowest index first" rule would break exact
    lumpability: low-index satellites would accumulate more uptime).

    Honours ``config.deployment_policy`` and
    ``config.repair_rate_per_hour`` exactly like
    :func:`build_capacity_san`; the per-satellite ``repair`` activity
    fires at ``rho * down_count`` and picks the restored satellite
    uniformly among the failed ones (same symmetry argument as the
    other repairs), so the quotient stays the counted model's chain.
    """
    full = config.full_capacity
    eta = config.threshold
    policy = config.deployment_policy
    sats = _satellite_names(full)

    places = [Place(s, 1) for s in sats] + [
        Place("spares", config.in_orbit_spares),
        Place("pending", 0),
    ]

    failures = [
        TimedActivity.exponential(
            f"failure_{i}",
            config.failure_rate_per_hour,
            input_arcs={s: 1},
        )
        for i, s in enumerate(sats, 1)
    ]

    def down_count(m) -> int:
        return sum(1 - m[s] for s in sats)

    def repair_case(s: str) -> Case:
        def probability(m) -> float:
            down = down_count(m)
            return (1 - m[s]) / down if down else 0.0

        return Case(probability=probability, output_arcs={s: 1})

    def restore_full(m) -> None:
        for s in sats:
            m[s] = 1
        m["spares"] = config.in_orbit_spares
        m["pending"] = 0

    scheduled = TimedActivity(
        "scheduled_deployment",
        Deterministic(config.scheduled_period_hours),
        input_gates=[InputGate("always", predicate=lambda m: True)],
        cases=[Case(output_gates=[OutputGate("restore_full", restore_full)])],
    )

    if config.repair_rate_per_hour is None:
        arrival_cases = [repair_case(s) for s in sats]
    else:
        # Mirror of the counted model's arrive-or-discard: with repair,
        # a replacement can arrive at a fully-healthy plane (down == 0)
        # and is discarded.  The discard probability is symmetric under
        # satellite permutation, so the exact lumpability is preserved.
        def discard_probability(m) -> float:
            return 1.0 if down_count(m) == 0 else 0.0

        arrival_cases = [repair_case(s) for s in sats] + [
            Case(probability=discard_probability)
        ]

    replacement_arrival = TimedActivity(
        "replacement_arrival",
        Deterministic(config.replacement_latency_hours),
        input_arcs={"pending": 1},
        cases=arrival_cases,
    )

    deploy_spare = InstantaneousActivity(
        "deploy_in_orbit_spare",
        priority=2,
        input_arcs={"spares": 1},
        input_gates=[
            InputGate("slot_open", predicate=lambda m: down_count(m) > 0)
        ],
        cases=[repair_case(s) for s in sats],
    )

    threshold_trigger = InstantaneousActivity(
        "threshold_trigger",
        priority=1,
        input_gates=[
            InputGate(
                "below_threshold",
                predicate=lambda m: (
                    m["spares"] == 0
                    and (full - down_count(m)) + m["pending"] < eta
                ),
            )
        ],
        cases=[Case(output_arcs={"pending": 1})],
    )

    timed = [*failures]
    if policy in ("combined", "scheduled"):
        timed.append(scheduled)
    timed.append(replacement_arrival)
    if config.repair_rate_per_hour is not None:
        timed.append(
            TimedActivity.exponential(
                "repair",
                lambda m: config.repair_rate_per_hour * down_count(m),
                input_gates=[
                    InputGate(
                        "repairable", predicate=lambda m: down_count(m) > 0
                    )
                ],
                cases=[repair_case(s) for s in sats],
            )
        )
    instantaneous = [deploy_spare]
    if policy in ("combined", "threshold"):
        instantaneous.append(threshold_trigger)
    return SANModel(
        places,
        timed_activities=timed,
        instantaneous_activities=instantaneous,
        name="orbital-plane-capacity-expanded",
        exchangeable_groups=[sats],
    )


# ----------------------------------------------------------------------
# Memoization layer
# ----------------------------------------------------------------------
# Final P(k) dictionaries are tiny; the unfolded chains are not, so the
# structural caches are kept small.  Distribution keys are
# (config, stages, variant); unfold keys are (config, stages); assemble
# keys are topology-only (_topology_key) so every rate point of a sweep
# shares one structure.
_DISTRIBUTION_CACHE = LRUSolveCache(maxsize=256, name="capacity-distribution")
_UNFOLD_CACHE = LRUSolveCache(maxsize=8, name="capacity-unfold")
_ASSEMBLE_CACHE = LRUSolveCache(maxsize=8, name="capacity-assemble")
_CACHING_ENABLED = True

# Per-stage wall-clock accumulators (seconds) and solver counters for
# this process.  The experiment engine reports run-level deltas of
# these; benchmarks and tests read them directly.
_STATS_LOCK = threading.Lock()
_STAGE_TIMINGS = {
    "assemble": 0.0,
    "refine": 0.0,
    "quotient": 0.0,
    "rerate": 0.0,
    "solve": 0.0,
}
_SOLVER_STATS = {
    "direct": 0,
    "iterative": 0,
    "warm_started": 0,
    "gmres_iterations": 0,
    "solver_fallbacks": 0,
    "structure_fallbacks": 0,
}


@contextmanager
def _timed(stage: str) -> Iterator[None]:
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        with _STATS_LOCK:
            _STAGE_TIMINGS[stage] += elapsed


def capacity_stage_timings() -> Dict[str, float]:
    """Cumulative seconds this process spent in the solver stages:
    ``assemble`` (reachability + array-native unfolding), ``refine``
    (symmetry verification: canonical-orbit reachability of the
    expanded model), ``quotient`` (assembling the reduced chain from
    the verified orbit space), ``rerate`` (rate evaluation + CTMC
    build) and ``solve`` (steady-state linear algebra).  ``refine`` and
    ``quotient`` accrue once per lumped topology however many rate
    points are swept on it -- the composition the lumping tests pin."""
    with _STATS_LOCK:
        return dict(_STAGE_TIMINGS)


def capacity_solver_stats() -> Dict[str, int]:
    """Counters of how capacity steady states were obtained.

    ``direct`` / ``iterative`` count solve methods, ``warm_started``
    the solves seeded from a previous point, ``gmres_iterations`` the
    total inner iterations, ``solver_fallbacks`` iterative attempts
    that fell back to direct, and ``structure_fallbacks`` re-rate
    attempts rejected by topology validation (full rebuild taken).
    """
    with _STATS_LOCK:
        return dict(_SOLVER_STATS)


def _note_solution(solution) -> None:
    with _STATS_LOCK:
        if solution.method == "gmres":
            _SOLVER_STATS["iterative"] += 1
        else:
            _SOLVER_STATS["direct"] += 1
        if solution.warm_started:
            _SOLVER_STATS["warm_started"] += 1
        _SOLVER_STATS["gmres_iterations"] += solution.iterations
        if solution.fallback is not None:
            _SOLVER_STATS["solver_fallbacks"] += 1


def capacity_cache_stats() -> Dict[str, CacheStats]:
    """Hit/miss/eviction counters of the capacity caches.

    ``distribution`` misses count actual steady-state solves, the
    quantity the experiment engine's tests pin down ("a 9-point tau
    sweep performs exactly one capacity solve"); ``assemble`` misses
    count structure builds -- one per distinct topology, however many
    rate points are solved on it.
    """
    return {
        "distribution": _DISTRIBUTION_CACHE.stats(),
        "unfold": _UNFOLD_CACHE.stats(),
        "assemble": _ASSEMBLE_CACHE.stats(),
    }


def clear_capacity_caches(*, reset_stats: bool = False) -> None:
    """Drop all cached solves, including assembled topologies and their
    warm-start state (counters survive unless asked not to)."""
    _DISTRIBUTION_CACHE.clear(reset_stats=reset_stats)
    _UNFOLD_CACHE.clear(reset_stats=reset_stats)
    _ASSEMBLE_CACHE.clear(reset_stats=reset_stats)
    if reset_stats:
        with _STATS_LOCK:
            for key in _STAGE_TIMINGS:
                _STAGE_TIMINGS[key] = 0.0
            for key in _SOLVER_STATS:
                _SOLVER_STATS[key] = 0


def configure_capacity_caches(
    *,
    distribution_maxsize: Optional[int] = None,
    unfold_maxsize: Optional[int] = None,
    assemble_maxsize: Optional[int] = None,
) -> None:
    """Resize the caches (evicting LRU entries when shrinking)."""
    if distribution_maxsize is not None:
        _DISTRIBUTION_CACHE.resize(distribution_maxsize)
    if unfold_maxsize is not None:
        _UNFOLD_CACHE.resize(unfold_maxsize)
    if assemble_maxsize is not None:
        _ASSEMBLE_CACHE.resize(assemble_maxsize)


def capacity_cache_snapshot():
    """The distribution cache's ``(key, P(k))`` entries -- what the
    parallel sweep runner ships to worker processes so a shared solve
    is not repeated per worker."""
    return _DISTRIBUTION_CACHE.snapshot()


def seed_capacity_cache(entries) -> None:
    """Install precomputed distribution entries (worker-side)."""
    _DISTRIBUTION_CACHE.seed(entries)


@contextmanager
def capacity_caches_disabled() -> Iterator[None]:
    """Temporarily restore solve-per-call behaviour (benchmark
    baselines).  Not safe under concurrent use from other threads."""
    global _CACHING_ENABLED
    previous = _CACHING_ENABLED
    _CACHING_ENABLED = False
    try:
        yield
    finally:
        _CACHING_ENABLED = previous


def _memoized(cache: LRUSolveCache, key, factory):
    if not _CACHING_ENABLED:
        return factory()
    return cache.get_or_compute(key, factory)


def _unfolded_chain(config: CapacityModelConfig, stages: int):
    """Cached (model, space, chain) triple for the deterministic-timer
    SAN -- shared by the transient path and the full-rebuild fallback."""

    def build():
        with _timed("assemble"):
            model = build_capacity_san(config)
            space = generate(model)
            chain = unfold(space, stages=stages)
        return model, space, chain

    return _memoized(_UNFOLD_CACHE, (config, stages), build)


# ----------------------------------------------------------------------
# Topology/rate split
# ----------------------------------------------------------------------
def _topology_key(config: CapacityModelConfig, stages: int) -> Tuple:
    """The fields that determine the SAN's *structure*.  The rate
    parameters (failure rate, scheduled period, replacement latency,
    repair rate) only scale transitions, so every point of a rate sweep
    maps to the same key and shares one assembled chain.  Everything
    structural must appear here: the spare count and threshold change
    the reachable markings, the deployment policy and the *presence* of
    a repair activity (``repair_rate_per_hour is not None`` -- the rate
    value itself, including 0.0, is a rate) add or remove activities.
    Two design-grid cells that differ in any of these must never alias
    onto one cached structure."""
    return (
        config.full_capacity,
        config.in_orbit_spares,
        config.threshold,
        config.deployment_policy,
        config.repair_rate_per_hour is not None,
        stages,
    )


def capacity_topology_key(config: CapacityModelConfig, stages: int) -> Tuple:
    """Public form of the topology/rate split: the hashable key under
    which ``(config, stages)`` shares an assembled structure (and its
    warm-start state) with every other rate point on the same topology.
    The campaign orchestrator uses it as an affinity key so cells that
    share a topology execute consecutively on one worker."""
    return _topology_key(config, stages)


class _AssembledTopology:
    """One cached topology: the assembled chain plus the warm-start
    state threaded between successive solves on it."""

    __slots__ = ("chain", "lock", "warm_start")

    def __init__(self, chain: AssembledChain):
        self.chain = chain
        self.lock = threading.Lock()
        self.warm_start: Optional[SteadyStateWarmStart] = None


def _assembled_topology(
    config: CapacityModelConfig, stages: int
) -> _AssembledTopology:
    def build() -> _AssembledTopology:
        with _timed("assemble"):
            model = build_capacity_san(config)
            space = generate(model)
            chain = assemble(space, stages=stages)
        return _AssembledTopology(chain)

    return _memoized(_ASSEMBLE_CACHE, _topology_key(config, stages), build)


def assemble_capacity_topology(
    config: CapacityModelConfig, *, stages: int = 24
) -> AssembledChain:
    """The re-ratable assembled chain for ``config``'s topology.

    Cached on the topology fields only (see :func:`_topology_key`);
    sweeps varying a rate reuse one structure.  The experiment engine
    calls this up front (``preassemble``) so workers inherit a built
    topology."""
    return _assembled_topology(config, stages).chain


def _marking_capacity_distribution(marking_probs, model: SANModel) -> Dict[int, float]:
    position = model.place_index.position("active")
    result: Dict[int, float] = {}
    for marking, probability in marking_probs.items():
        k = marking[position]
        result[k] = result.get(k, 0.0) + probability
    return {k: result[k] for k in sorted(result)}


def _solve_full_rebuild(
    config: CapacityModelConfig, stages: int
) -> Dict[int, float]:
    """The pre-split pipeline: regenerate, unfold and solve directly.
    Kept as the fallback when topology validation rejects a re-rate."""
    model, space, chain = _unfolded_chain(config, stages)
    with _timed("solve"):
        by_marking_index = chain.steady_state_markings()
    marking_probs = {
        space.markings[idx]: prob for idx, prob in by_marking_index.items()
    }
    return _marking_capacity_distribution(marking_probs, model)


def _steady_state_marking_marginals(entry: _AssembledTopology, model: SANModel):
    """Re-rate ``entry``'s chain from ``model``, solve (warm-started)
    and return the tangible-marking marginals.  A structural mismatch
    propagates as :class:`ModelError` for the caller's fallback."""
    chain = entry.chain
    with _timed("rerate"):
        ctmc = chain.rerate(model)
    with _timed("solve"):
        with entry.lock:
            warm_start = entry.warm_start if _CACHING_ENABLED else None
            solution = ctmc.steady_state_solve(
                method="auto",
                warm_start=warm_start,
                prepare_warm_start=_CACHING_ENABLED,
            )
            if _CACHING_ENABLED and solution.warm_start is not None:
                entry.warm_start = solution.warm_start
        _note_solution(solution)
    return chain.marking_marginals(solution.pi)


def capacity_distribution(
    config: CapacityModelConfig, *, stages: int = 24
) -> Dict[int, float]:
    """Steady-state ``P(k)`` by phase-type unfolding of the SAN.

    ``stages`` controls the Erlang approximation of the two
    deterministic timers; 24 keeps the error well under simulation
    noise for the paper's parameter ranges (see the ablation
    benchmark).

    Memoized on ``(config, stages)``: repeated calls return the cached
    distribution without re-running the SAN pipeline.  Distinct configs
    sharing a topology (rate sweeps) share one assembled structure and
    only re-rate + solve per point; successive solves on a topology
    warm-start from the previous stationary vector
    (:meth:`repro.san.ctmc.CTMC.steady_state_solve`), falling back to
    the full rebuild path on any structural mismatch.
    """

    def solve() -> Dict[int, float]:
        entry = _assembled_topology(config, stages)
        model = build_capacity_san(config)
        try:
            marginals = _steady_state_marking_marginals(entry, model)
        except ModelError:
            # The new config changed the structure (should not happen
            # for capacity configs -- the topology key covers every
            # structural field -- but re-rating must never be wrong).
            with _STATS_LOCK:
                _SOLVER_STATS["structure_fallbacks"] += 1
            return _solve_full_rebuild(config, stages)
        position = model.place_index.position("active")
        result: Dict[int, float] = {}
        for marking, probability in zip(
            entry.chain.space.markings, marginals.tolist()
        ):
            k = marking[position]
            result[k] = result.get(k, 0.0) + probability
        return {k: result[k] for k in sorted(result)}

    result = _memoized(_DISTRIBUTION_CACHE, (config, stages, "erlang"), solve)
    return dict(result)


# ----------------------------------------------------------------------
# Expanded (per-satellite) model: the lumping showcase
# ----------------------------------------------------------------------
def _expanded_topology_key(
    config: CapacityModelConfig, stages: int, lumped: bool
) -> Tuple:
    """Lumping-aware topology key: the quotient and the full expanded
    structures are distinct cache entries (different state spaces,
    different warm-start vectors)."""
    return ("expanded", bool(lumped)) + _topology_key(config, stages)


def _expanded_assembled_topology(
    config: CapacityModelConfig, stages: int, *, lumped: bool
) -> _AssembledTopology:
    def build() -> _AssembledTopology:
        model = build_capacity_san_expanded(config)
        if lumped:
            # Refine once per topology: the canonical-orbit reachability
            # (symmetry verification included) and the quotient assembly
            # are cached with the chain, so a rate sweep pays them once
            # and re-rates per point, exactly like the counted path.
            with _timed("refine"):
                space = lumped_state_space(model)
            with _timed("quotient"):
                chain = assemble(space, stages=stages)
        else:
            with _timed("assemble"):
                space = generate(model)
                chain = assemble(space, stages=stages)
        return _AssembledTopology(chain)

    return _memoized(
        _ASSEMBLE_CACHE, _expanded_topology_key(config, stages, lumped), build
    )


def _solve_expanded_pk(
    entry: _AssembledTopology, config: CapacityModelConfig
) -> Dict[int, float]:
    model = build_capacity_san_expanded(config)
    marginals = _steady_state_marking_marginals(entry, model)
    positions = [
        model.place_index.position(s)
        for s in _satellite_names(config.full_capacity)
    ]
    result: Dict[int, float] = {}
    for marking, probability in zip(
        entry.chain.space.markings, marginals.tolist()
    ):
        k = sum(marking[p] for p in positions)
        result[k] = result.get(k, 0.0) + probability
    return {k: result[k] for k in sorted(result)}


def capacity_distribution_expanded(
    config: CapacityModelConfig, *, stages: int = 24, lump: bool = True
) -> Dict[int, float]:
    """Steady-state ``P(k)`` of the per-satellite expanded plane model
    (:func:`build_capacity_san_expanded`).

    With ``lump`` (the default) the chain is built on the verified
    orbit quotient (:func:`repro.san.lumping.lumped_state_space`):
    state count collapses from :math:`O(2^{\\text{satellites}})` to the
    counted model's handful, which is what makes scaled constellations
    (:mod:`repro.experiments.scaled_capacity_exp`) solvable at all.
    Any :class:`ModelError` on the lumped path -- a non-lumpable model
    variant, a broken symmetry -- falls back to the unlumped expanded
    chain (counted in ``structure_fallbacks``).

    Memoized and topology-split like :func:`capacity_distribution`:
    rate sweeps refine/assemble once per topology, re-rate per point
    and warm-start successive solves.
    """

    def solve() -> Dict[int, float]:
        if lump:
            try:
                entry = _expanded_assembled_topology(
                    config, stages, lumped=True
                )
                return _solve_expanded_pk(entry, config)
            except ModelError:
                with _STATS_LOCK:
                    _SOLVER_STATS["structure_fallbacks"] += 1
        entry = _expanded_assembled_topology(config, stages, lumped=False)
        return _solve_expanded_pk(entry, config)

    variant = "expanded-lumped" if lump else "expanded-full"
    result = _memoized(_DISTRIBUTION_CACHE, (config, stages, variant), solve)
    return dict(result)


def expanded_capacity_summary(
    config: CapacityModelConfig, *, stages: int = 24
) -> Dict[str, object]:
    """Size accounting of the lumped expanded topology: how many orbit
    representatives stand for how many tangible markings, and the
    unfolded quotient's dimensions.  Builds (and caches) the lumped
    topology as a side effect."""
    entry = _expanded_assembled_topology(config, stages, lumped=True)
    space = entry.chain.space
    assert isinstance(space, LumpedStateSpace)
    return {
        "orbit_representatives": len(space),
        "full_tangible_markings": space.full_state_count,
        "marking_reduction": space.full_state_count / len(space),
        "quotient_states": entry.chain.num_states,
        "quotient_transitions": entry.chain.num_transitions,
    }


def capacity_cross_check(
    config: CapacityModelConfig,
    *,
    stages: int = 24,
    include_unlumped: bool = False,
) -> Dict[str, object]:
    """Cross-solver agreement report for one capacity configuration.

    Solves ``P(k)`` through the counted chain
    (:func:`capacity_distribution`) and the symmetry-lumped expanded
    chain (:func:`capacity_distribution_expanded`), optionally also the
    *unlumped* expanded chain (exponential state space -- only feasible
    for small ``full_capacity``), and reports the maximum pointwise
    deltas.  The scenario-corpus conformance harness
    (:mod:`repro.scenarios.runner`) scores these deltas per cell."""
    counted = capacity_distribution(config, stages=stages)
    lumped = capacity_distribution_expanded(config, stages=stages, lump=True)
    ks = sorted(set(counted) | set(lumped))
    report: Dict[str, object] = {
        "counted": counted,
        "lumped": lumped,
        "lumped_vs_counted_delta": max(
            abs(counted.get(k, 0.0) - lumped.get(k, 0.0)) for k in ks
        ),
    }
    if include_unlumped:
        unlumped = capacity_distribution_expanded(
            config, stages=stages, lump=False
        )
        ks = sorted(set(lumped) | set(unlumped))
        report["unlumped"] = unlumped
        report["lumped_vs_unlumped_delta"] = max(
            abs(lumped.get(k, 0.0) - unlumped.get(k, 0.0)) for k in ks
        )
    return report


def capacity_distribution_exponential(
    config: CapacityModelConfig,
) -> Dict[int, float]:
    """Steady-state ``P(k)`` with all timers exponentialised (ablation
    baseline: what you get without deterministic-activity support).
    Memoized like :func:`capacity_distribution`."""

    def solve() -> Dict[int, float]:
        model = build_capacity_san(config, exponential_timers=True)
        space = generate(model)
        ctmc = from_state_space(space)
        pi = ctmc.steady_state()
        marking_probs = steady_state_marking_distribution(space, pi)
        return _marking_capacity_distribution(marking_probs, model)

    result = _memoized(
        _DISTRIBUTION_CACHE, (config, None, "exponential"), solve
    )
    return dict(result)


def capacity_distribution_simulated(
    config: CapacityModelConfig,
    *,
    horizon_hours: float = 3.0e6,
    warmup_hours: float = 1.0e5,
    seed: Optional[int] = None,
) -> Dict[int, float]:
    """Steady-state ``P(k)`` estimated by discrete-event simulation of
    the SAN with exact deterministic timers."""
    model = build_capacity_san(config)
    simulator = SANSimulator(model, seed=seed)
    result = simulator.run(horizon_hours, warmup=warmup_hours, rewards={})
    position = model.place_index.position("active")
    distribution: Dict[int, float] = {}
    for marking, fraction in result.marking_occupancy.items():
        k = marking[position]
        distribution[k] = distribution.get(k, 0.0) + fraction
    return {k: distribution[k] for k in sorted(distribution)}


#: Uniformisation truncation tolerance for transient solves.  Tight
#: enough that the incremental (advance-from-previous-point) and
#: from-scratch evaluation orders agree to well below 1e-12 even after
#: accumulating truncation error across many time points.
_TRANSIENT_TOLERANCE = 1e-14


def capacity_transient(
    config: CapacityModelConfig,
    times,
    *,
    stages: int = 16,
    incremental: bool = True,
) -> "Dict[float, Dict[int, float]]":
    """Time-dependent capacity distribution ``P(k at t)`` (hours),
    starting from a freshly deployed plane (14 active + 2 spares).

    An extension beyond the paper's steady-state evaluation (PASTA
    justified steady state there): useful for questions like "how
    degraded is the constellation likely to be halfway through a
    scheduled-deployment period?".  Solved by uniformisation on the
    phase-type-unfolded chain (cached, so evaluating more time points
    later reuses the structural work).

    With ``incremental`` (the default) the time points are evaluated in
    sorted order and each solve advances the state vector from the
    previous point over ``t - t_prev`` instead of restarting the
    Poisson sum from ``t = 0`` -- the total uniformisation work is one
    pass over ``max(times)`` rather than ``sum(times)``.  The Markov
    property makes the two orders mathematically identical; the shared
    truncation tolerance keeps them numerically identical to well
    below 1e-12.
    """
    model, space, chain = _unfolded_chain(config, stages)
    position = model.place_index.position("active")

    def marginal(probabilities) -> Dict[int, float]:
        by_marking = chain.marginalise(probabilities)
        distribution: Dict[int, float] = {}
        for marking_index, probability in by_marking.items():
            k = space.markings[marking_index][position]
            distribution[k] = distribution.get(k, 0.0) + probability
        return {k: distribution[k] for k in sorted(distribution)}

    unique_times = sorted({float(t) for t in times})
    by_time: Dict[float, Dict[int, float]] = {}
    if incremental:
        previous_time = 0.0
        vector = None
        for t in unique_times:
            vector = chain.ctmc.transient(
                t - previous_time,
                initial=vector,
                tolerance=_TRANSIENT_TOLERANCE,
            )
            previous_time = t
            by_time[t] = marginal(vector)
    else:
        for t in unique_times:
            by_time[t] = marginal(
                chain.ctmc.transient(t, tolerance=_TRANSIENT_TOLERANCE)
            )
    # Preserve the caller's key set / iteration order (duplicates
    # collapse onto the same float key exactly as before).
    return {float(t): by_time[float(t)] for t in times}
