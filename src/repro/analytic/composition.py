"""Composition of the QoS measure (paper Eq. 3).

``P(Y >= y) ~= SUM_{y' >= y} SUM_{k=9}^{14} P(Y = y' | k) P(k)``

The conditional distributions come from
:mod:`repro.analytic.qos_model`; the orbital-plane capacity
probabilities ``P(k)`` come from :mod:`repro.analytic.capacity` (or any
other mapping, e.g. a simulation estimate).  The paper neglects
``k < 9`` because the spare-deployment policies make those states
extremely unlikely; accordingly the supplied ``P(k)`` may sum to
slightly less than one and is renormalised (the truncation tolerance is
configurable so a genuinely deficient distribution is still rejected).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.config import EvaluationParams
from repro.core.qos import QoSDistribution
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError

__all__ = ["compose", "composed_distribution"]


def compose(
    capacity_probabilities: Mapping[int, float],
    conditional: Callable[[int], QoSDistribution],
    *,
    truncation_tolerance: float = 0.05,
) -> QoSDistribution:
    """Mix conditional QoS distributions by plane-capacity weights.

    Parameters
    ----------
    capacity_probabilities:
        ``P(k)`` for each retained capacity ``k``.  Must sum to 1 within
        ``truncation_tolerance`` (Eq. (3) truncates ``k < 9``); the
        weights are renormalised.
    conditional:
        Function returning ``P(Y = . | k)`` for a capacity ``k``.
    """
    if not capacity_probabilities:
        raise ConfigurationError("capacity_probabilities is empty")
    total = sum(capacity_probabilities.values())
    if any(p < 0 for p in capacity_probabilities.values()):
        raise ConfigurationError(
            f"capacity probabilities must be non-negative: {capacity_probabilities}"
        )
    if abs(total - 1.0) > truncation_tolerance:
        raise ConfigurationError(
            f"capacity probabilities sum to {total:.6f}, outside the allowed "
            f"truncation tolerance {truncation_tolerance}"
        )
    components = [
        (p / total, conditional(k))
        for k, p in sorted(capacity_probabilities.items())
        if p > 0.0
    ]
    return QoSDistribution.mixture(components)


def composed_distribution(
    capacity_probabilities: Mapping[int, float],
    params: EvaluationParams,
    scheme: Scheme,
    *,
    truncation_tolerance: float = 0.05,
) -> QoSDistribution:
    """Eq. (3) with the paper's closed-form conditionals: the
    unconditional QoS distribution ``P(Y = y)`` for ``scheme``."""
    from repro.analytic.qos_model import conditional_distribution

    def conditional(k: int) -> QoSDistribution:
        geometry = params.constellation.plane_geometry(k)
        return conditional_distribution(geometry, params, scheme)

    return compose(
        capacity_probabilities,
        conditional,
        truncation_tolerance=truncation_tolerance,
    )
