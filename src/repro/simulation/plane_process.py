"""Independent discrete-event simulation of the plane-degradation
process.

This deliberately does **not** reuse :mod:`repro.san`: it is a second,
hand-written implementation of the same stochastic process (failures,
in-orbit spares, sustain-at-threshold replacements, scheduled restores)
used to cross-validate the SAN solution of ``P(k)`` -- two independent
codebases agreeing on the stationary distribution is strong evidence
both encode the intended model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analytic.capacity import CapacityModelConfig
from repro.desim.kernel import Simulator
from repro.errors import ConfigurationError

__all__ = ["PlaneDegradationSimulation", "simulate_capacity_distribution"]


class PlaneDegradationSimulation:
    """DES of one orbital plane's capacity over time (hours)."""

    def __init__(self, config: CapacityModelConfig, *, seed: Optional[int] = None):
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.simulator = Simulator()
        self.active = config.full_capacity
        self.spares = config.in_orbit_spares
        self.pending = 0
        self._occupancy: Dict[int, float] = {}
        self._last_change = 0.0
        self._warmup = 0.0
        self._failure_event = None
        self._generation = 0  # invalidates stale replacement arrivals

    # ------------------------------------------------------------------
    def _record(self) -> None:
        now = self.simulator.now
        start = max(self._last_change, self._warmup)
        if now > start:
            self._occupancy[self.active] = (
                self._occupancy.get(self.active, 0.0) + now - start
            )
        self._last_change = now

    def _schedule_failure(self) -> None:
        if self._failure_event is not None:
            self._failure_event.cancel()
            self._failure_event = None
        if self.active <= 0:
            return
        rate = self.config.failure_rate_per_hour * self.active
        delay = float(self.rng.exponential(1.0 / rate))
        self._failure_event = self.simulator.schedule(delay, self._on_failure)

    def _on_failure(self) -> None:
        self._record()
        self.active -= 1
        if self.spares > 0:
            # In-orbit spare takes over immediately.
            self.spares -= 1
            self.active += 1
        else:
            # Threshold policy: keep active + pending at the threshold.
            while self.active + self.pending < self.config.threshold:
                self.pending += 1
                self.simulator.schedule(
                    self.config.replacement_latency_hours,
                    self._on_replacement,
                    self._generation,
                )
        self._schedule_failure()

    def _on_replacement(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a scheduled full restore
        self._record()
        self.pending -= 1
        self.active += 1
        self._schedule_failure()

    def _on_scheduled(self) -> None:
        self._record()
        self.active = self.config.full_capacity
        self.spares = self.config.in_orbit_spares
        self.pending = 0
        self._generation += 1  # cancel in-flight replacements
        self._schedule_failure()
        self.simulator.schedule(
            self.config.scheduled_period_hours, self._on_scheduled
        )

    # ------------------------------------------------------------------
    def run(
        self, horizon_hours: float, *, warmup_hours: float = 0.0
    ) -> Dict[int, float]:
        """Simulate and return the time-weighted capacity distribution
        over ``(warmup, horizon]``."""
        if horizon_hours <= warmup_hours:
            raise ConfigurationError(
                f"horizon ({horizon_hours}) must exceed warmup ({warmup_hours})"
            )
        self._warmup = warmup_hours
        self._schedule_failure()
        self.simulator.schedule(
            self.config.scheduled_period_hours, self._on_scheduled
        )
        self.simulator.run_until(horizon_hours)
        self._record()
        total = sum(self._occupancy.values())
        return {k: v / total for k, v in sorted(self._occupancy.items())}


def simulate_capacity_distribution(
    config: CapacityModelConfig,
    *,
    horizon_hours: float = 3.0e6,
    warmup_hours: float = 1.0e5,
    seed: Optional[int] = None,
) -> Dict[int, float]:
    """Convenience wrapper: run one long replication and return the
    empirical ``P(k)``."""
    simulation = PlaneDegradationSimulation(config, seed=seed)
    return simulation.run(horizon_hours, warmup_hours=warmup_hours)
