"""Independent discrete-event simulation of the plane-degradation
process.

This deliberately does **not** reuse :mod:`repro.san`: it is a second,
hand-written implementation of the same stochastic process (failures,
in-orbit spares, sustain-at-threshold replacements, scheduled restores,
optional on-orbit repair) used to cross-validate the SAN solution of
``P(k)`` -- two independent codebases agreeing on the stationary
distribution is strong evidence both encode the intended model.

The simulation honours every :class:`~repro.analytic.capacity.\
CapacityModelConfig` field the SAN builders honour: the
``deployment_policy`` variants (``combined`` / ``threshold`` /
``scheduled``) and the optional ``repair_rate_per_hour`` (each failed
satellite independently restored at rate ``rho``; a replacement that
arrives at an already-full plane is discarded, mirroring the SAN's
arrive-or-discard case).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analytic.capacity import CapacityModelConfig
from repro.desim.kernel import Simulator
from repro.errors import ConfigurationError

__all__ = [
    "PlaneDegradationSimulation",
    "sample_capacity_states",
    "simulate_capacity_distribution",
]


class PlaneDegradationSimulation:
    """DES of one orbital plane's capacity over time (hours)."""

    def __init__(self, config: CapacityModelConfig, *, seed=None):
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.simulator = Simulator()
        self.active = config.full_capacity
        self.spares = config.in_orbit_spares
        self.pending = 0
        self._occupancy: Dict[int, float] = {}
        self._last_change = 0.0
        self._warmup = 0.0
        self._failure_event = None
        self._repair_event = None
        self._generation = 0  # invalidates stale replacement arrivals
        self._started = False

    # ------------------------------------------------------------------
    def _record(self) -> None:
        now = self.simulator.now
        start = max(self._last_change, self._warmup)
        if now > start:
            self._occupancy[self.active] = (
                self._occupancy.get(self.active, 0.0) + now - start
            )
        self._last_change = now

    def _schedule_failure(self) -> None:
        if self._failure_event is not None:
            self._failure_event.cancel()
            self._failure_event = None
        if self.active <= 0:
            return
        rate = self.config.failure_rate_per_hour * self.active
        delay = float(self.rng.exponential(1.0 / rate))
        self._failure_event = self.simulator.schedule(delay, self._on_failure)

    def _schedule_repair(self) -> None:
        # Memorylessness makes resampling the aggregate-repair delay at
        # every state change exact; a None (or zero) rate never fires.
        rho = self.config.repair_rate_per_hour
        if rho is None:
            return
        if self._repair_event is not None:
            self._repair_event.cancel()
            self._repair_event = None
        down = self.config.full_capacity - self.active
        rate = rho * down
        if rate <= 0.0:
            return
        delay = float(self.rng.exponential(1.0 / rate))
        self._repair_event = self.simulator.schedule(delay, self._on_repair)

    def _reschedule(self) -> None:
        self._schedule_failure()
        self._schedule_repair()

    def _sustain_threshold(self) -> None:
        """The threshold-trigger policy: launch replacements until
        ``active + pending`` is back at ``eta`` (no-op when spares
        remain or the policy omits the trigger)."""
        if self.config.deployment_policy not in ("combined", "threshold"):
            return
        if self.spares > 0:
            return
        while self.active + self.pending < self.config.threshold:
            self.pending += 1
            self.simulator.schedule(
                self.config.replacement_latency_hours,
                self._on_replacement,
                self._generation,
            )

    def _on_failure(self) -> None:
        self._record()
        self.active -= 1
        if self.spares > 0:
            # In-orbit spare takes over immediately.
            self.spares -= 1
            self.active += 1
        else:
            self._sustain_threshold()
        self._reschedule()

    def _on_replacement(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a scheduled full restore
        self._record()
        self.pending -= 1
        if self.active < self.config.full_capacity:
            self.active += 1
        # else: repair beat the launch to it; the late spare is
        # discarded (the SAN's arrive-or-discard case).
        self._reschedule()

    def _on_repair(self) -> None:
        self._record()
        self.active += 1
        self._reschedule()

    def _on_scheduled(self) -> None:
        self._record()
        self.active = self.config.full_capacity
        self.spares = self.config.in_orbit_spares
        self.pending = 0
        self._generation += 1  # cancel in-flight replacements
        self._reschedule()
        self.simulator.schedule(
            self.config.scheduled_period_hours, self._on_scheduled
        )

    # ------------------------------------------------------------------
    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        self._schedule_failure()
        self._schedule_repair()
        if self.config.deployment_policy in ("combined", "scheduled"):
            self.simulator.schedule(
                self.config.scheduled_period_hours, self._on_scheduled
            )

    def run(
        self, horizon_hours: float, *, warmup_hours: float = 0.0
    ) -> Dict[int, float]:
        """Simulate and return the time-weighted capacity distribution
        over ``(warmup, horizon]``."""
        if horizon_hours <= warmup_hours:
            raise ConfigurationError(
                f"horizon ({horizon_hours}) must exceed warmup ({warmup_hours})"
            )
        self._warmup = warmup_hours
        self._start()
        self.simulator.run_until(horizon_hours)
        self._record()
        total = sum(self._occupancy.values())
        return {k: v / total for k, v in sorted(self._occupancy.items())}

    def capacity_at(self, t_hours: float) -> int:
        """The active-satellite count ``K(t)`` of one trajectory."""
        if t_hours < 0:
            raise ConfigurationError(f"t_hours must be >= 0, got {t_hours}")
        self._start()
        self.simulator.run_until(t_hours)
        return self.active


def simulate_capacity_distribution(
    config: CapacityModelConfig,
    *,
    horizon_hours: float = 3.0e6,
    warmup_hours: float = 1.0e5,
    seed: Optional[int] = None,
) -> Dict[int, float]:
    """Convenience wrapper: run one long replication and return the
    empirical ``P(k)``."""
    simulation = PlaneDegradationSimulation(config, seed=seed)
    return simulation.run(horizon_hours, warmup_hours=warmup_hours)


def sample_capacity_states(
    config: CapacityModelConfig,
    *,
    samples: int,
    warmup_hours: float,
    window_hours: float,
    seed: Optional[int] = None,
) -> List[int]:
    """Independent draws of the stationary capacity ``K``.

    Each of ``samples`` *independent* replications is observed once, at
    a uniformly random time in ``(warmup, warmup + window]`` -- random
    so the draw averages over the deterministic scheduled-restore cycle
    (the process is cyclo-stationary under the scheduled policy, so a
    *fixed* observation time would be biased; pick ``window_hours`` as
    a multiple of ``scheduled_period_hours`` when that policy is
    active).  The returned values are iid, which is what the Wilson
    containment checks need (a single long trajectory's occupancy
    fractions are time-correlated and have no binomial error model).

    Seeding follows the repository convention: replication ``i`` uses
    ``SeedSequence(seed).spawn(samples)[i]``, so results are
    byte-identical across reruns and independent of evaluation order.
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    if warmup_hours < 0 or window_hours <= 0:
        raise ConfigurationError(
            f"need warmup_hours >= 0 and window_hours > 0, got "
            f"{warmup_hours}, {window_hours}"
        )
    values: List[int] = []
    for child in np.random.SeedSequence(seed).spawn(samples):
        rng = np.random.default_rng(child)
        observe = warmup_hours + float(rng.uniform(0.0, window_hours))
        simulation = PlaneDegradationSimulation(config, seed=rng)
        values.append(simulation.capacity_at(observe))
    return values
