"""Batched Monte-Carlo replication of protocol scenarios.

The protocol-level estimators (the ``P(Y = y | k)`` cross-validation of
:mod:`repro.simulation.qos_montecarlo` and the fault campaigns of
:mod:`repro.faults`) draw thousands of independent scenario samples
that share *everything* except the signal and the random draws: the
plane geometry, the footprint cycle, the satellite roster and its
next-peer wiring, the crosslink network, the ground station.  Building
a fresh :class:`~repro.protocol.runner.CenterlineScenario` per sample
re-creates all of that immutable structure every time, and that
construction -- not the discrete-event run itself -- is the dominant
per-sample cost.

:class:`ScenarioTemplate` constructs the immutable parts once and
exposes a cheap :meth:`~ScenarioTemplate.replicate` that resets only
the mutable state (the kernel's clock and queue, the network log and
fail-silent set, the satellites' per-signal protocol state, the random
generator) before scheduling the next sample's physical events.  A
replication preserves the legacy scenario's draw order, so the same
seed produces the *same outcome* as ``CenterlineScenario`` -- the
template is a faster execution engine, not a different model.

Two event-scheduling modes:

* ``lazy_events=True`` (default): footprint arrivals are scheduled only
  for the detector and for satellites actually invited into the
  coordination chain (via the satellite's ``on_invited`` hook), and
  double-coverage onsets are chained one at a time, stopping once the
  alert is out or the signal has died.  Un-invited arrivals and
  post-alert onsets are no-ops in the legacy scenario, so outcomes are
  unchanged; only the no-op event traffic disappears.
* ``lazy_events=False`` (strict): every event the legacy scenario would
  schedule is scheduled up front, in the same order, giving the same
  ``(time, priority, seq)`` keys event for event.  The fault-injection
  campaign uses this mode so its golden results stay byte-identical.

Per-stage wall-clock accumulators (``template`` / ``replicate`` /
``run``) mirror the capacity solver's stage timings and are reported as
run-level deltas by :class:`~repro.experiments.engine.SweepRunner`.
See ``docs/SIMULATION.md`` for the user guide.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.analytic.distributions import Distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSLevel
from repro.core.schemes import Scheme
from repro.desim.kernel import Simulator
from repro.desim.network import LossFn, Network
from repro.errors import ConfigurationError
from repro.geometry.intervals import FootprintCycle
from repro.geometry.plane import PlaneGeometry
from repro.protocol.accuracy_model import AccuracyModel
from repro.protocol.ground import GroundStation
from repro.protocol.runner import ScenarioOutcome, normalise_onset_position
from repro.protocol.satellite import MessagingVariant, OAQSatellite
from repro.protocol.signal import Signal

__all__ = [
    "ScenarioTemplate",
    "Replication",
    "batch_stage_timings",
    "reset_batch_stage_timings",
]

# Per-stage wall-clock accumulators (seconds) for this process.  The
# experiment engine reports run-level deltas; benchmarks read them
# directly.
_STATS_LOCK = threading.Lock()
_STAGE_TIMINGS = {
    "template": 0.0,
    "replicate": 0.0,
    "run": 0.0,
    # Vector-engine stages (repro.simulation.vector): total time inside
    # the vectorized pass, and the portion spent re-running divergent
    # replications through the scalar oracle.
    "vector": 0.0,
    "vector_fallback": 0.0,
}


@contextmanager
def _timed(stage: str) -> Iterator[None]:
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        with _STATS_LOCK:
            _STAGE_TIMINGS[stage] += elapsed


def batch_stage_timings() -> Dict[str, float]:
    """Cumulative seconds this process spent in the three replication
    stages: ``template`` (one-time scenario construction),
    ``replicate`` (per-sample state reset + event scheduling) and
    ``run`` (discrete-event execution + adjudication)."""
    with _STATS_LOCK:
        return dict(_STAGE_TIMINGS)


def reset_batch_stage_timings() -> None:
    """Zero the stage accumulators (benchmark hygiene)."""
    with _STATS_LOCK:
        for key in _STAGE_TIMINGS:
            _STAGE_TIMINGS[key] = 0.0


class Replication:
    """One scheduled-but-not-yet-run sample of a template.

    Returned by :meth:`ScenarioTemplate.replicate`; calling
    :meth:`run` (or the slim :meth:`run_level`) executes the
    discrete-event simulation and adjudicates the outcome.  Only the
    *most recent* replication of a template is valid -- the template's
    infrastructure is shared, so creating a new replication invalidates
    the previous one (running a stale replication raises
    :class:`ConfigurationError`).
    """

    __slots__ = ("_template", "_generation", "signal", "onset_position", "rng", "detection_time")

    def __init__(
        self,
        template: "ScenarioTemplate",
        generation: int,
        signal: Signal,
        onset_position: float,
        rng: np.random.Generator,
        detection_time: Optional[float],
    ):
        self._template = template
        self._generation = generation
        self.signal = signal
        self.onset_position = onset_position
        self.rng = rng
        self.detection_time = detection_time

    def _check_current(self) -> None:
        if self._generation != self._template._generation:
            raise ConfigurationError(
                "stale replication: the template has been replicated "
                "again since this sample was created"
            )

    def run(self, *, horizon: Optional[float] = None) -> ScenarioOutcome:
        """Run the simulation to quiescence and adjudicate (same
        contract as :meth:`CenterlineScenario.run`)."""
        self._check_current()
        template = self._template
        start = time.perf_counter()
        template.simulator.run_until(
            template.horizon if horizon is None else horizon
        )
        ground = template.ground
        signal_id = self.signal.signal_id
        official = ground.official(signal_id)
        level = QoSLevel(
            ground.achieved_level(signal_id, template.params.tau)
        )
        outcome = ScenarioOutcome(
            signal=self.signal,
            achieved_level=level,
            official_alert=official,
            all_alerts=ground.alerts(signal_id),
            duplicates=ground.duplicates(signal_id),
            message_log=list(template.network.log),
            detection_time=self.detection_time,
        )
        elapsed = time.perf_counter() - start
        with _STATS_LOCK:
            _STAGE_TIMINGS["run"] += elapsed
        return outcome

    def run_level(self) -> Tuple[int, bool]:
        """Slim fast path: run and return only
        ``(achieved QoS level, detected?)`` without building a
        :class:`ScenarioOutcome`.

        The run is cut short as soon as the ground station receives an
        alert: the downlink delay is constant, so the first alert
        delivered is the first one sent -- the official alert -- and no
        later event can change the achieved level.
        """
        self._check_current()
        template = self._template
        start = time.perf_counter()
        ground = template.ground
        template.simulator.run_until(
            template.horizon, stop=lambda: ground.alert_received
        )
        level = ground.achieved_level(
            self.signal.signal_id, template.params.tau
        )
        elapsed = time.perf_counter() - start
        with _STATS_LOCK:
            _STAGE_TIMINGS["run"] += elapsed
        return level, self.detection_time is not None


class ScenarioTemplate:
    """Immutable scenario structure, built once, replicated cheaply.

    Parameters mirror :class:`~repro.protocol.runner.CenterlineScenario`
    for everything structural (geometry, params, scheme, variant,
    models, satellite count, loss configuration); the per-sample inputs
    (seed, onset position, signal duration, fail-silent schedule,
    next-peer override) move to :meth:`replicate`.

    Parameters
    ----------
    crosslink_loss_probability / link_loss_fn:
        Per-message loss configuration, shared by every replication
        (the fault campaign builds one template per plan cell).
    lazy_events:
        Schedule only events that can affect the outcome (see module
        docstring).  ``False`` reproduces the legacy event schedule
        key-for-key.
    record_log:
        Keep per-message :class:`MessageRecord` entries.  Off by
        default -- the batched estimators never read the log.
    """

    def __init__(
        self,
        geometry: PlaneGeometry,
        params: EvaluationParams,
        *,
        scheme: Scheme = Scheme.OAQ,
        variant: MessagingVariant = MessagingVariant.DONE_PROPAGATION,
        accuracy_model: Optional[AccuracyModel] = None,
        computation_time: Optional[Distribution] = None,
        satellite_count: Optional[int] = None,
        crosslink_loss_probability: float = 0.0,
        link_loss_fn: Optional[LossFn] = None,
        lazy_events: bool = True,
        record_log: bool = False,
    ):
        with _timed("template"):
            self.geometry = geometry
            self.params = params
            self.scheme = scheme
            self.variant = variant
            self.cycle = FootprintCycle(geometry)
            self.lazy_events = lazy_events
            if satellite_count is None:
                satellite_count = 3 + int(
                    math.ceil(
                        (params.tau + geometry.coverage_time) / geometry.l1
                    )
                )
            self.satellite_count = satellite_count
            self.names: List[str] = [
                f"S{j + 1}" for j in range(satellite_count)
            ]
            self.horizon = (
                params.tau + geometry.coverage_time + geometry.l1 + 5.0
            )
            self._lossy = (
                crosslink_loss_probability > 0.0 or link_loss_fn is not None
            )
            self._generation = 0
            self._next_map = {
                name: successor
                for name, successor in zip(self.names, self.names[1:])
            }
            self._next_peer_current: Callable[[str], Optional[str]] = (
                self._default_next_peer
            )

            self.simulator = Simulator()
            self.network = Network(
                self.simulator,
                default_delay=params.delta,
                loss_probability=crosslink_loss_probability,
                loss_fn=link_loss_fn,
                rng=np.random.default_rng(0) if self._lossy else None,
            )
            self.network.record_log = record_log
            self.ground = GroundStation(self.network)
            self.satellites: Dict[str, OAQSatellite] = {}
            for name in self.names:
                satellite = OAQSatellite(
                    name,
                    self.simulator,
                    self.network,
                    params,
                    geometry,
                    scheme=scheme,
                    variant=variant,
                    accuracy_model=accuracy_model,
                    computation_time=computation_time,
                    next_peer=self._dispatch_next_peer,
                    ground_name=self.ground.name,
                )
                if lazy_events:
                    satellite.on_invited = self._on_invited
                self.satellites[name] = satellite

            # Coverage-interval bases: satellite j covers
            # [j*L1 - onset - offset, ... + Tc); only the onset varies
            # per replication.
            offset = geometry.l2 if geometry.overlapping else 0.0
            self._interval_bases = [
                j * geometry.l1 - offset for j in range(satellite_count)
            ]
            self._roster = [
                (name, self.satellites[name], base)
                for name, base in zip(self.names, self._interval_bases)
            ]
            # The doubly-covered beta interval is [L1 - L2, L1); a plain
            # comparison replaces the per-replication interval lookup.
            self._beta_start = geometry.single_coverage_length
            # Per-replication state (set by replicate()).
            self._signal: Optional[Signal] = None
            self._detector_name: Optional[str] = None
            self._arrival_times: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Peer wiring
    # ------------------------------------------------------------------
    def _default_next_peer(self, name: str) -> Optional[str]:
        return self._next_map.get(name)

    def _dispatch_next_peer(self, name: str) -> Optional[str]:
        return self._next_peer_current(name)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def replicate(
        self,
        seed=None,
        *,
        onset_position: Optional[float] = None,
        signal_duration: Optional[float] = None,
        fail_silent: Optional[Mapping[str, float]] = None,
        next_peer_override: Optional[Callable[[str], Optional[str]]] = None,
    ) -> Replication:
        """Reset the shared infrastructure and schedule one sample.

        ``seed`` is anything :func:`numpy.random.default_rng` accepts
        (an int, a :class:`~numpy.random.SeedSequence`, or an existing
        generator, which is used as-is).  The signal draws follow the
        legacy scenario's order exactly -- onset first, duration second
        -- and the same generator then drives the protocol's draws, so
        ``replicate(seed)`` reproduces
        ``CenterlineScenario(geometry, params, ..., seed=seed).run()``
        outcome for outcome.
        """
        start = time.perf_counter()
        self._generation += 1
        rng = np.random.default_rng(seed)
        geometry = self.geometry
        if onset_position is None:
            onset_position = float(rng.uniform(0.0, geometry.l1))
        onset_position = normalise_onset_position(geometry, onset_position)
        if signal_duration is None:
            signal_duration = float(
                rng.exponential(1.0 / self.params.mu)
            )
        signal = Signal("signal-0", 0.0, signal_duration)
        self._signal = signal

        simulator = self.simulator
        simulator.reset()
        self.network.reset(rng=rng if self._lossy else None)
        self.ground.reset()
        for satellite in self.satellites.values():
            satellite.reset(rng)
        self._next_peer_current = (
            next_peer_override or self._default_next_peer
        )

        for name, fail_time in (fail_silent or {}).items():
            if name not in self.satellites:
                raise ConfigurationError(
                    f"unknown fail-silent node {name!r}"
                )
            simulator.at(max(0.0, fail_time), self.network.fail, name)

        detection_time = self._schedule_physical_events(onset_position)
        replication = Replication(
            self,
            self._generation,
            signal,
            onset_position,
            rng,
            detection_time,
        )
        elapsed = time.perf_counter() - start
        with _STATS_LOCK:
            _STAGE_TIMINGS["replicate"] += elapsed
        return replication

    def sample_levels(
        self,
        rng: np.random.Generator,
        onsets: np.ndarray,
        durations: np.ndarray,
        *,
        engine: str = "batch",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batch fast path: one protocol run per ``(onset, duration)``
        pair, all drawing protocol randomness (computation times,
        accuracy jitter) from the *shared* generator ``rng``.

        Returns ``(levels, detected)`` arrays (``uint8`` QoS levels and
        a detection mask).  Each run is cut short at the first delivered
        alert (see :meth:`Replication.run_level`).  Deterministic for a
        fixed generator state, but *not* draw-order compatible with
        per-seed :meth:`replicate` -- estimators built on it are pinned
        statistically, not bit-for-bit (see ``docs/SIMULATION.md``).

        ``engine`` selects the execution strategy: ``"batch"`` (one
        scalar event loop per pair, the reference semantics) or
        ``"vector"`` (the struct-of-arrays engine of
        :mod:`repro.simulation.vector`, which advances all pairs at
        once and shunts replications it cannot model exactly back to
        the scalar oracle).  The two engines consume ``rng`` in
        different orders, so they are statistically -- not draw-for-
        draw -- equivalent; within the vector engine, levels are pinned
        exactly against the scalar oracle on shared tapes.
        """
        onsets = np.asarray(onsets, dtype=float)
        durations = np.asarray(durations, dtype=float)
        if onsets.shape != durations.shape or onsets.ndim != 1:
            raise ConfigurationError(
                "onsets and durations must be 1-D arrays of equal length"
            )
        l1 = self.geometry.l1
        if np.any((onsets < 0.0) | (onsets > l1 + 1e-12)):
            raise ConfigurationError(
                f"onset positions must be in [0, L1={l1})"
            )
        # Wrap the half-open cycle boundary, as normalise_onset_position
        # does for scalars.
        onsets = np.where(onsets >= l1, 0.0, onsets)

        if engine == "vector":
            from repro.simulation.vector import sample_levels_vector

            return sample_levels_vector(self, rng, onsets, durations)
        if engine != "batch":
            raise ConfigurationError(
                f"unknown engine {engine!r} (expected 'batch' or 'vector')"
            )

        count = len(onsets)
        levels = np.empty(count, dtype=np.uint8)
        detected = np.empty(count, dtype=bool)
        onset_list = onsets.tolist()
        duration_list = durations.tolist()

        self._generation += 1  # invalidate outstanding replications
        simulator = self.simulator
        network = self.network
        ground = self.ground
        satellites = list(self.satellites.values())
        loss_rng = rng if self._lossy else None
        self._next_peer_current = self._default_next_peer
        horizon = self.horizon
        tau = self.params.tau
        stop = lambda: ground.alert_received  # noqa: E731
        perf_counter = time.perf_counter
        spent_replicate = 0.0
        spent_run = 0.0

        # The generator is shared across the whole batch, so install it
        # once; the per-iteration part of satellite.reset() reduces to
        # clearing the per-signal state dicts.
        for satellite in satellites:
            satellite.reset(rng)
        state_dicts = [satellite._states for satellite in satellites]

        start = perf_counter()
        for index in range(count):
            simulator.reset()
            network.reset(rng=loss_rng)
            ground.reset()
            for states in state_dicts:
                states.clear()
            self._signal = Signal("signal-0", 0.0, duration_list[index])
            detection_time = self._schedule_physical_events(
                onset_list[index]
            )
            mid = perf_counter()
            simulator.run_until(horizon, stop=stop)
            levels[index] = ground.achieved_level("signal-0", tau)
            detected[index] = detection_time is not None
            end = perf_counter()
            spent_replicate += mid - start
            spent_run += end - mid
            start = end
        with _STATS_LOCK:
            _STAGE_TIMINGS["replicate"] += spent_replicate
            _STAGE_TIMINGS["run"] += spent_run
        return levels, detected

    # ------------------------------------------------------------------
    # Physical-event scheduling (mirrors CenterlineScenario)
    # ------------------------------------------------------------------
    def _schedule_physical_events(
        self, onset_position: float
    ) -> Optional[float]:
        geometry = self.geometry
        signal = self._signal
        duration = signal.duration
        simulator = self.simulator
        coverage_time = geometry.coverage_time
        overlapping = geometry.overlapping
        lazy = self.lazy_events

        detection_time: Optional[float] = None
        detector: Optional[str] = None
        self._arrival_times = arrivals = {}
        for name, satellite, base in self._roster:
            start = base - onset_position
            if start + coverage_time <= 0.0:
                continue  # this visit ended before the signal started
            arrival = start if start > 0.0 else 0.0
            simultaneous = False
            is_detector = False
            # signal.active(arrival) inlined: the signal spans
            # [0, duration) and arrival >= 0 always.
            if detector is None and arrival < duration:
                detection_time = arrival
                detector = name
                is_detector = True
                simultaneous = (
                    overlapping
                    and arrival == 0.0
                    and onset_position >= self._beta_start
                )
            if lazy:
                arrivals[name] = arrival
                if not is_detector:
                    # Un-invited arrivals are no-ops; schedule on
                    # invitation instead (satellite.on_invited hook).
                    continue
            simulator.at(
                arrival,
                self._arrival,
                satellite,
                simultaneous,
                is_detector,
            )
        self._detector_name = detector

        if overlapping and detector is not None:
            beta_offset = geometry.single_coverage_length - onset_position
            first = beta_offset if beta_offset > 0 else beta_offset + geometry.l1
            dc_horizon = self.params.tau + geometry.l1
            if lazy:
                # Chained scheduling: only the next onset is queued, and
                # the chain stops once it can no longer change the
                # outcome (alert sent, signal dead, or horizon passed).
                # For non-OAQ schemes every onset is a no-op, so none
                # are scheduled at all.
                if self.scheme is Scheme.OAQ and first <= dc_horizon:
                    simulator.at(first, self._dc_onset, first, dc_horizon)
            else:
                t = first
                on_coverage = self.satellites[detector].on_simultaneous_coverage
                while t <= dc_horizon:
                    simulator.at(t, on_coverage, signal)
                    t += geometry.l1
        return detection_time

    def _arrival(
        self, satellite: OAQSatellite, simultaneous: bool, allow_detection: bool
    ) -> None:
        satellite.on_footprint_arrival(
            self._signal,
            simultaneous=simultaneous,
            allow_detection=allow_detection,
        )

    def _on_invited(self, name: str) -> None:
        """Lazy-mode hook: a coordination request reached ``name``, so
        its footprint arrival now matters -- schedule it (unless the
        pass already went by, which the legacy scenario treats as a
        silent miss)."""
        arrival = self._arrival_times.get(name)
        if arrival is None or arrival < self.simulator.now:
            return
        self.simulator.at(
            arrival, self._arrival, self.satellites[name], False, False
        )

    def _dc_onset(self, at_time: float, dc_horizon: float) -> None:
        """Lazy-mode chained double-coverage onset."""
        detector = self.satellites[self._detector_name]
        detector.on_simultaneous_coverage(self._signal)
        t_next = at_time + self.geometry.l1
        if t_next > dc_horizon:
            return
        state = detector.state_of(self._signal.signal_id)
        if state is not None and state.alert_sent:
            return  # every later onset is a no-op
        if not self._signal.active(t_next):
            return  # the signal never comes back
        self.simulator.at(t_next, self._dc_onset, t_next, dc_horizon)
