"""End-to-end integration scenarios: orbits + measurements + WLS.

These scenarios quantify, with the *real* estimation stack, the
accuracy behind each QoS level of the paper's spectrum -- the premise
(Section 3.1) that more coverage means better geolocation:

* **level 1** -- a single satellite pass (few measurements, elongated
  error ellipse from the across-track ambiguity);
* **level 2** -- sequential dual coverage: a second satellite revisits
  ``Tr[k]`` minutes later and its pass is folded in by sequential
  localization;
* **level 3** -- simultaneous dual coverage: two adjacent satellites
  observe the emitter during the overlap window at the same time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.qos import QoSLevel
from repro.errors import ConfigurationError
from repro.geolocation.measurements import Emitter, MeasurementGenerator
from repro.geolocation.sequential import SequentialLocalizer
from repro.geolocation.wls import WLSEstimator
from repro.orbits.constellation import OrbitalPlane
from repro.orbits.bodies import EARTH
from repro.orbits.footprint import half_angle_for_coverage_time
from repro.orbits.frames import GeodeticPoint, subsatellite_point

__all__ = ["CoverageAccuracyScenario", "LevelAccuracy"]


@dataclass(frozen=True)
class LevelAccuracy:
    """Accuracy statistics for one QoS level over Monte-Carlo trials."""

    level: QoSLevel
    median_error_km: float
    mean_estimated_error_km: float
    trials: int


class CoverageAccuracyScenario:
    """Measures geolocation accuracy per coverage pattern.

    Parameters
    ----------
    active_satellites:
        ``k`` for the plane under study.
    measurements_per_pass:
        Doppler samples each satellite collects while the emitter is in
        its footprint (the paper's satellites are capacity-constrained,
        so keep this small).
    doppler_sigma_hz:
        Measurement noise.
    emitter_offset_deg:
        Cross-track offset of the emitter from the ground track
        (degrees); small values are the near-centre-line worst case.
    """

    def __init__(
        self,
        *,
        active_satellites: int = 12,
        orbit_period_minutes: float = 90.0,
        coverage_time_minutes: float = 9.0,
        inclination_deg: float = 85.0,
        measurements_per_pass: int = 6,
        doppler_sigma_hz: float = 10.0,
        emitter_offset_deg: float = 0.7,
        emitter_frequency_hz: float = 900.0e6,
    ):
        if active_satellites < 2:
            raise ConfigurationError(
                f"need at least 2 satellites, got {active_satellites}"
            )
        if measurements_per_pass < 3:
            raise ConfigurationError(
                f"need >= 3 measurements per pass, got {measurements_per_pass}"
            )
        period_s = orbit_period_minutes * 60.0
        altitude_km = EARTH.semi_major_axis_km(period_s) - EARTH.radius_km
        self.plane = OrbitalPlane(
            plane_index=0,
            altitude_km=altitude_km,
            inclination=math.radians(inclination_deg),
            raan=0.0,
            active_count=active_satellites,
        )
        self.footprint_half_angle = half_angle_for_coverage_time(
            orbit_period_minutes, coverage_time_minutes
        )
        self.orbit_period_minutes = orbit_period_minutes
        self.measurements_per_pass = measurements_per_pass
        self.doppler_sigma_hz = doppler_sigma_hz
        self.emitter_offset_deg = emitter_offset_deg
        self.emitter_frequency_hz = emitter_frequency_hz
        # Reference pass: satellite 0 crosses the target latitude around
        # t such that the sub-satellite point is near 30 degrees.
        self._reference_time_s = self._time_at_latitude(math.radians(30.0))

    def _time_at_latitude(self, latitude: float) -> float:
        """First time satellite 0's sub-satellite latitude reaches
        ``latitude`` (coarse scan + refinement)."""
        satellite = self.plane.satellites[0]
        period = satellite.orbit.period_s()
        best_t, best_gap = 0.0, float("inf")
        for t in np.arange(0.0, period, 5.0):
            point = subsatellite_point(satellite.position_ecef(float(t)))
            gap = abs(point.latitude - latitude)
            if gap < best_gap:
                best_gap, best_t = gap, float(t)
        return best_t

    def _make_emitter(self) -> Emitter:
        satellite = self.plane.satellites[0]
        track_point = subsatellite_point(
            satellite.position_ecef(self._reference_time_s)
        )
        location = GeodeticPoint(
            track_point.latitude,
            track_point.longitude + math.radians(self.emitter_offset_deg),
        )
        return Emitter(location, self.emitter_frequency_hz)

    def _pass_times(self, pass_center_s: float) -> np.ndarray:
        """Measurement epochs across one footprint dwell."""
        half_window = 0.5 * 60.0 * (
            self.footprint_half_angle * self.orbit_period_minutes / math.pi
        )
        return np.linspace(
            pass_center_s - 0.8 * half_window,
            pass_center_s + 0.8 * half_window,
            self.measurements_per_pass,
        )

    def _joint_visibility_times(
        self,
        generator: MeasurementGenerator,
        first,
        partner,
        t_ref: float,
    ) -> np.ndarray:
        """Epochs at which *both* satellites cover the emitter (the
        overlap window of a simultaneous dual coverage)."""
        scan = np.arange(t_ref - 600.0, t_ref + 900.0, 10.0)
        joint = [
            float(t)
            for t in scan
            if generator.visible(first, float(t))
            and generator.visible(partner, float(t))
        ]
        if len(joint) < 2:
            raise ConfigurationError(
                "no overlap window: the plane underlaps at this capacity"
            )
        return np.linspace(joint[0], joint[-1], self.measurements_per_pass)

    def _trial(
        self,
        level: QoSLevel,
        rng: np.random.Generator,
    ) -> "Optional[Tuple[float, float]]":
        """One Monte-Carlo trial: returns (true error, estimated error)
        in km, or None when no measurements were collected."""
        emitter = self._make_emitter()
        generator = MeasurementGenerator(
            emitter,
            doppler_sigma_hz=self.doppler_sigma_hz,
            footprint_half_angle=self.footprint_half_angle,
        )
        first = self.plane.satellites[0]
        partner = self.plane.satellites[-1]
        t_ref = self._reference_time_s
        revisit_s = 60.0 * self.orbit_period_minutes / self.plane.active_count
        # Warm-start near the reference pass centre: the coarse position
        # any detection already provides (the footprint that saw the
        # signal).
        localizer = SequentialLocalizer(
            WLSEstimator(),
            initial_guess=subsatellite_point(first.position_ecef(t_ref)),
        )
        # All levels share the same base observation window (the overlap
        # window, where the comparison is meaningful): what varies is
        # *who else* observes, exactly as in the paper's QoS spectrum.
        times = self._joint_visibility_times(generator, first, partner, t_ref)
        batch = generator.observe(first, times, rng)
        if level is QoSLevel.SIMULTANEOUS_DUAL:
            # The adjacent satellite observes at the same instants.
            batch = batch + generator.observe(partner, times, rng)
        if not batch:
            return None
        result = localizer.add_pass(batch)
        if level is QoSLevel.SEQUENTIAL_DUAL:
            # The next satellite revisits: same emitter, measured one
            # revisit period later around its own pass centre.
            second = generator.observe(
                partner, self._pass_times(t_ref + revisit_s), rng
            )
            if second:
                result = localizer.add_pass(second)
        return result.error_km(emitter.location), result.horizontal_error_km

    def run_level(
        self,
        level: QoSLevel,
        *,
        trials: int = 20,
        seed: Optional[int] = None,
    ) -> LevelAccuracy:
        """Monte-Carlo accuracy for one coverage pattern."""
        if level is QoSLevel.MISSED:
            raise ConfigurationError("level 0 has no accuracy to measure")
        rng = np.random.default_rng(seed)
        errors: List[float] = []
        estimated: List[float] = []
        for _ in range(trials):
            outcome = self._trial(level, rng)
            if outcome is None:
                continue
            errors.append(outcome[0])
            estimated.append(outcome[1])
        if not errors:
            raise ConfigurationError(
                "no trials produced measurements; check the geometry"
            )
        finite_estimates = [e for e in estimated if math.isfinite(e)]
        return LevelAccuracy(
            level=level,
            median_error_km=float(np.median(errors)),
            mean_estimated_error_km=(
                float(np.mean(finite_estimates))
                if finite_estimates
                else float("inf")
            ),
            trials=len(errors),
        )

    def error_samples(
        self,
        level: QoSLevel,
        *,
        trials: int = 20,
        seed: Optional[int] = None,
    ) -> List[float]:
        """Raw per-trial true errors (km) for one coverage pattern --
        the empirical error distribution consumed by
        :class:`~repro.protocol.accuracy_model.EmpiricalWLSAccuracyModel`."""
        if level is QoSLevel.MISSED:
            raise ConfigurationError("level 0 has no accuracy to measure")
        rng = np.random.default_rng(seed)
        errors: List[float] = []
        for _ in range(trials):
            outcome = self._trial(level, rng)
            if outcome is not None:
                errors.append(outcome[0])
        return errors

    def run_all_levels(
        self, *, trials: int = 20, seed: Optional[int] = None
    ) -> Dict[QoSLevel, LevelAccuracy]:
        """Accuracy for levels 1-3 (keyed by level)."""
        results = {}
        for offset, level in enumerate(
            (QoSLevel.SINGLE, QoSLevel.SEQUENTIAL_DUAL, QoSLevel.SIMULTANEOUS_DUAL)
        ):
            results[level] = self.run_level(
                level, trials=trials, seed=None if seed is None else seed + offset
            )
        return results
