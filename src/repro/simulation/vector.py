"""Struct-of-arrays vectorized replication of protocol scenarios.

The batched engine of :mod:`repro.simulation.batch` still steps one
Python event loop per replication (~0.1 ms per sample).  This module
runs *R* replications of one :class:`ScenarioTemplate` as a single
vectorized pass: all protocol randomness is drawn up front into
*tapes* (struct-of-arrays columns, one row per replication), and the
deterministic protocol timeline -- detection, the underlap coordination
chain with its guards and done wave, the overlap withholding /
double-coverage onsets, the first-alert early stop -- is advanced with
numpy array ops over per-replication state columns.

Correctness contract
--------------------
The scalar event-driven engine stays the reference oracle.  For every
replication the vector path must produce **exactly** the ``(level,
detected)`` pair the scalar :class:`~repro.simulation.batch.Replication`
produces when driven by the same tape row (see
:func:`scalar_reference_levels`, which replays a tape through
``template.replicate`` via a :class:`numpy.random.Generator` adapter).
Replications whose timeline the vector model does not cover -- lossy
links, custom accuracy models, non-exponential computation times,
exact event-time ties whose resolution depends on kernel scheduling
order -- are collected in a *divergence mask* and shunted to the scalar
oracle, so the vector path only has to model the hot branches, never
every branch.  The fallback fraction is surfaced via
:func:`vector_batch_stats` and the ``vector_fallback`` stage timer.

Draw discipline
---------------
Callers draw the signal variates (onset positions, durations) first --
typically via :func:`~repro.simulation.qos_montecarlo.draw_signal_variates`
on a ``SeedSequence``-spawned generator -- then hand the same generator
here.  The engine consumes it in a fixed, documented order:

1. ``comp``: an ``(R, D)`` matrix of computation durations,
   ``rng.exponential(1/nu, (R, D))``;
2. ``jit``: an ``(R, D)`` matrix of accuracy jitter factors,
   ``rng.uniform(1 - j, 1 + j, (R, D))`` (skipped when ``j == 0``,
   matching the scalar model which draws nothing then);
3. one ``uint64`` spill seed for the oracle's overflow stream.

``D`` bounds the number of computations any replication can start
before its outcome is decided (chain depth / double-coverage onsets are
limited by ``tau`` and the cycle length).  Within a row, tape cells are
consumed in computation-start order for ``comp`` and completion order
for ``jit`` -- exactly the order the scalar protocol draws them.

See ``docs/SIMULATION.md`` ("Vectorized replication engine") for the
user guide and for when to prefer ``engine="vector"`` over
``engine="batch"``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.analytic.distributions import Exponential
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.protocol.accuracy_model import GeometricAccuracyModel
from repro.protocol.satellite import MessagingVariant

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.batch import ScenarioTemplate

__all__ = [
    "ProtocolTapes",
    "draw_protocol_tapes",
    "sample_levels_vector",
    "scalar_reference_levels",
    "vector_batch_stats",
    "reset_vector_batch_stats",
]

#: Ground-station deadline tolerance (mirrors
#: ``GroundStation.achieved_level``).
_TOL = 1e-9

_STATS_LOCK = threading.Lock()
_STATS = {"calls": 0, "replications": 0, "fallbacks": 0}


def vector_batch_stats() -> Dict[str, float]:
    """Cumulative vector-engine counters for this process: ``calls``
    (vector-path invocations), ``replications`` (total rows processed),
    ``fallbacks`` (rows shunted to the scalar oracle) and the derived
    ``fallback_fraction``."""
    with _STATS_LOCK:
        stats: Dict[str, float] = dict(_STATS)
    total = stats["replications"]
    stats["fallback_fraction"] = stats["fallbacks"] / total if total else 0.0
    return stats


def reset_vector_batch_stats() -> None:
    """Zero the vector-engine counters (benchmark hygiene)."""
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0


@dataclass
class ProtocolTapes:
    """Pre-drawn protocol randomness for one vectorized pass.

    ``comp[i, c]`` is the duration of the ``c``-th computation
    replication ``i`` starts; ``jit[i, c]`` the jitter factor of the
    ``c``-th estimate it builds (``None`` when the accuracy model is
    jitter-free).  ``fallback_all`` marks templates the vector model
    does not cover at all (the oracle then decides every row, fed by
    deterministic spill streams derived from ``spill_seed``).
    """

    comp: np.ndarray
    jit: Optional[np.ndarray]
    comp_scale: float
    jit_bounds: Optional[Tuple[float, float]]
    spill_seed: int
    fallback_all: bool = False
    reason: Optional[str] = None


def _template_support(template: "ScenarioTemplate") -> Optional[str]:
    """Why the vector fast path cannot model this template (None if it
    can).  Unsupported templates fall back to the scalar oracle for
    every replication -- results stay exact, just not fast."""
    if template._lossy:
        return "lossy crosslinks"
    if template.params.delta <= 0.0:
        # With a zero crosslink delay, guard expiries, done deliveries
        # and completions collapse onto identical timestamps and the
        # outcome hinges on kernel tie-breaking; leave it to the oracle.
        return "zero crosslink delay"
    geometry = template.geometry
    if geometry.overlapping and geometry.single_coverage_length + geometry.l1 <= 0.0:
        return "degenerate overlap (triple-coverage geometry)"
    reference = next(iter(template.satellites.values()))
    comp = reference.computation_time
    model = reference.accuracy_model
    if type(comp) is not Exponential or comp.rate <= 0.0:
        return "non-exponential computation time"
    if type(model) is not GeometricAccuracyModel:
        return "custom accuracy model"
    for satellite in template.satellites.values():
        other_comp = satellite.computation_time
        other_model = satellite.accuracy_model
        if type(other_comp) is not Exponential or other_comp.rate != comp.rate:
            return "heterogeneous computation times"
        if (
            type(other_model) is not GeometricAccuracyModel
            or other_model.single_pass_km != model.single_pass_km
            or other_model.refinement_factor != model.refinement_factor
            or other_model.simultaneous_km != model.simultaneous_km
            or other_model.jitter != model.jitter
        ):
            return "heterogeneous accuracy models"
    return None


def _tape_depth(template: "ScenarioTemplate") -> int:
    """Computations any one replication can start before its outcome is
    decided.  Underlap chains stop once ``(n-2)*L1`` exceeds ``tau``
    (the successor's footprint would arrive past the deadline);
    double-coverage onsets stop at ``tau + L1``.  Both are bounded by
    ``floor(tau / L1) + 3`` columns including the initial computation.
    """
    depth = int(math.floor(template.params.tau / template.geometry.l1)) + 3
    return max(depth, 2)


def draw_protocol_tapes(
    template: "ScenarioTemplate", rng: np.random.Generator, count: int
) -> ProtocolTapes:
    """Draw the protocol tapes for ``count`` replications from ``rng``
    in the documented order (comp matrix, jitter matrix, spill seed)."""
    reason = _template_support(template)
    if reason is not None:
        spill_seed = int(rng.integers(0, 2**63, dtype=np.uint64))
        return ProtocolTapes(
            comp=np.empty((count, 0)),
            jit=None,
            comp_scale=0.0,
            jit_bounds=None,
            spill_seed=spill_seed,
            fallback_all=True,
            reason=reason,
        )
    reference = next(iter(template.satellites.values()))
    rate = reference.computation_time.rate
    jitter = reference.accuracy_model.jitter
    depth = _tape_depth(template)
    # Mirror Exponential.sample / GeometricAccuracyModel._jittered
    # exactly: same scale expression, same uniform bounds.
    comp_scale = 1.0 / rate
    comp = rng.exponential(comp_scale, size=(count, depth))
    if jitter > 0.0:
        jit_bounds = (1.0 - jitter, 1.0 + jitter)
        jit = rng.uniform(jit_bounds[0], jit_bounds[1], size=(count, depth))
    else:
        jit_bounds = None
        jit = None
    spill_seed = int(rng.integers(0, 2**63, dtype=np.uint64))
    return ProtocolTapes(
        comp=comp,
        jit=jit,
        comp_scale=comp_scale,
        jit_bounds=jit_bounds,
        spill_seed=spill_seed,
    )


class _TapeRNG(np.random.Generator):
    """Replays one replication's tape row through the
    :class:`numpy.random.Generator` interface the scalar protocol
    expects.  Scalar ``exponential``/``uniform`` calls that match the
    tape's parameters pop the next tape cell; everything else (loss
    draws, empirical-model draws, tape overflow) comes from a
    deterministic per-row spill stream."""

    def __init__(self, tapes: ProtocolTapes, row: int):
        super().__init__(np.random.PCG64(0))
        self._comp = tapes.comp[row]
        self._comp_len = tapes.comp.shape[1]
        self._comp_scale = tapes.comp_scale
        self._ci = 0
        self._jit = None if tapes.jit is None else tapes.jit[row]
        self._jit_bounds = tapes.jit_bounds
        self._ji = 0
        self._spill: Optional[np.random.Generator] = None
        self._spill_key = (tapes.spill_seed, row)

    def _spill_rng(self) -> np.random.Generator:
        if self._spill is None:
            self._spill = np.random.default_rng(self._spill_key)
        return self._spill

    def exponential(self, scale=1.0, size=None):  # noqa: D102
        if (
            size is None
            and scale == self._comp_scale
            and self._ci < self._comp_len
        ):
            value = self._comp[self._ci]
            self._ci += 1
            return value
        return self._spill_rng().exponential(scale, size)

    def uniform(self, low=0.0, high=1.0, size=None):  # noqa: D102
        jit = self._jit
        if (
            size is None
            and jit is not None
            and self._ji < len(jit)
            and (low, high) == self._jit_bounds
        ):
            value = jit[self._ji]
            self._ji += 1
            return value
        return self._spill_rng().uniform(low, high, size)

    def random(self, *args, **kwargs):  # noqa: D102
        return self._spill_rng().random(*args, **kwargs)

    def integers(self, *args, **kwargs):  # noqa: D102
        return self._spill_rng().integers(*args, **kwargs)

    def choice(self, *args, **kwargs):  # noqa: D102
        return self._spill_rng().choice(*args, **kwargs)

    def gamma(self, *args, **kwargs):  # noqa: D102
        return self._spill_rng().gamma(*args, **kwargs)

    def weibull(self, *args, **kwargs):  # noqa: D102
        return self._spill_rng().weibull(*args, **kwargs)

    def normal(self, *args, **kwargs):  # noqa: D102
        return self._spill_rng().normal(*args, **kwargs)


def scalar_reference_levels(
    template: "ScenarioTemplate",
    onsets: np.ndarray,
    durations: np.ndarray,
    tapes: ProtocolTapes,
    indices: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run replications through the scalar event-driven engine, driven
    by the tape rows.  This is the reference oracle the vector path is
    pinned against; with ``indices`` it evaluates just the divergence
    mask."""
    if indices is None:
        indices = np.arange(len(onsets))
    levels = np.empty(len(indices), dtype=np.uint8)
    detected = np.empty(len(indices), dtype=bool)
    for out, row in enumerate(indices):
        row = int(row)
        replication = template.replicate(
            _TapeRNG(tapes, row),
            onset_position=float(onsets[row]),
            signal_duration=float(durations[row]),
        )
        levels[out], detected[out] = replication.run_level()
    return levels, detected


# ----------------------------------------------------------------------
# Vectorized timelines
# ----------------------------------------------------------------------
def _overlap_levels(
    template: "ScenarioTemplate",
    x: np.ndarray,
    dur: np.ndarray,
    tapes: ProtocolTapes,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Overlapping plane: S1 always detects at t=0; an onset in the
    doubly-covered beta region starts simultaneous, otherwise the
    detector withholds (OAQ) after its initial computation and chained
    double-coverage onsets race the deadline guard."""
    geometry = template.geometry
    params = template.params
    model = next(iter(template.satellites.values())).accuracy_model
    l1 = geometry.l1
    tau = params.tau
    delta = params.delta
    tg = params.tg
    alpha = geometry.single_coverage_length
    comp = tapes.comp
    jit = tapes.jit

    count = len(x)
    fallback = np.zeros(count, dtype=bool)
    detected = dur > 0.0
    sim0 = x >= alpha
    c1 = comp[:, 0]

    if template.scheme is not Scheme.OAQ:
        # BAQ finalizes right after the initial computation; the
        # estimate is simultaneous iff detection was.
        level = np.where(sim0, 3, 1).astype(np.uint8)
        ok = detected & (c1 <= tau + _TOL)
        return np.where(ok, level, 0).astype(np.uint8), detected, fallback

    # --- The detector's own alert candidate -------------------------
    # If c1 completes before any double-coverage alert: a simultaneous
    # detection finalizes immediately; a single detection evaluates
    # TC-1/TC-2 (alert at c1) or withholds behind the deadline guard.
    u1 = jit[:, 0] if jit is not None else 1.0
    err1 = model.single_pass_km * u1
    tc1 = ~sim0 & (err1 <= params.error_threshold_km)
    tc2 = ~sim0 & ~tc1 & (c1 > tau - (1 * delta + tg))
    # Guard fires at armed-time + max(0, deadline - armed-time); mirror
    # the scalar float arithmetic (it is not exactly ``tau``).
    guard_time = c1 + np.maximum(0.0, tau - c1)
    own_time = np.where(sim0 | tc1 | tc2, c1, guard_time)
    best = np.where(detected, own_time, np.inf)
    best_level = np.where(sim0, 3, 1).astype(np.uint8)

    # --- Chained double-coverage onsets -----------------------------
    dc_horizon = tau + l1
    beta_offset = alpha - x
    w0 = np.where(beta_offset > 0.0, beta_offset, beta_offset + l1)
    sched = detected & (w0 <= dc_horizon)
    depth = comp.shape[1]
    s = w0
    prev_s = None
    for m in range(depth - 1):
        if m > 0:
            # The next onset is queued at the previous one, iteratively
            # (s + L1, matching the scalar accumulation), and only if no
            # alert went out by then and the signal is still alive.
            s = prev_s + l1
            fallback |= sched & (best == prev_s)
            sched = sched & (s <= dc_horizon) & (dur > s) & (best > prev_s)
        if not sched.any():
            break
        # The onset starts a simultaneous computation iff the signal is
        # alive and the detector is still computing or withholding --
        # which, chain-invariantly, reduces to "no alert sent yet".
        fallback |= sched & (best == s)
        start = sched & (dur > s) & (best > s)
        completion = s + comp[:, m + 1]
        candidate = np.where(start, completion, np.inf)
        fallback |= start & (candidate == best)
        improve = candidate < best
        best_level = np.where(improve, 3, best_level)
        best = np.where(improve, candidate, best)
        prev_s = s
    else:
        # Tape exhausted with onsets potentially pending: shunt any row
        # whose chain could still extend (cannot happen for the
        # documented depth bound, but never silently mis-model).
        if prev_s is not None:
            s = prev_s + l1
            fallback |= sched & (s <= dc_horizon) & (dur > s) & (best > prev_s)

    # Detection is at t=0, so latency == alert time.
    ok = detected & (best <= tau + _TOL)
    levels = np.where(ok, best_level, 0).astype(np.uint8)
    return levels, detected, fallback


def _underlap_levels(
    template: "ScenarioTemplate",
    x: np.ndarray,
    dur: np.ndarray,
    tapes: ProtocolTapes,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Underlapping plane: the coordination chain expands one satellite
    per cycle.  Pass ``n`` consumes tape column ``n-1``; TC-1/TC-2
    finalize, a missing successor finalizes, a dead signal at the
    successor's pass triggers TC-3 (guard timeout under
    done-propagation, inherited delivery under
    successor-responsibility)."""
    geometry = template.geometry
    params = template.params
    model = next(iter(template.satellites.values())).accuracy_model
    l1 = geometry.l1
    tc_cov = geometry.coverage_time
    tau = params.tau
    delta = params.delta
    tg = params.tg
    thr = params.error_threshold_km
    sp = model.single_pass_km
    rf = model.refinement_factor
    comp = tapes.comp
    jit = tapes.jit
    roster = template.satellite_count
    dp = template.variant is MessagingVariant.DONE_PROPAGATION

    count = len(x)
    fallback = np.zeros(count, dtype=bool)
    in_first = x < tc_cov
    # Detector: S1 if the onset lands inside its pass, else S2 once its
    # footprint arrives -- provided the signal survives until then.
    t0 = np.where(in_first, 0.0, l1 - x)
    d = np.where(in_first, 0, 1)
    detected = np.where(in_first, dur > 0.0, dur > l1 - x)

    levels = np.zeros(count, dtype=np.uint8)
    official_time = np.full(count, np.inf)
    official_level = np.zeros(count, dtype=np.uint8)
    # 0 = undecided-and-silent (SR chain died unscheduled): stays level 0.
    decided = ~detected

    if template.scheme is not Scheme.OAQ:
        t1 = t0 + comp[:, 0]
        latency = t1 - t0
        ok = detected & (latency <= tau + _TOL)
        return np.where(ok, 1, 0).astype(np.uint8), detected, fallback

    alive = detected.copy()
    start_n = t0.copy()
    err = np.ones(count)
    prev_guard_fire = np.full(count, np.inf)  # G_{n-1}'s actual fire time
    depth = comp.shape[1]
    for n in range(1, depth + 1):
        if not alive.any():
            break
        level_n = 1 if n == 1 else 2
        level_prev = 1 if n - 1 == 1 else 2
        tn = start_n + comp[:, n - 1]
        un = jit[:, n - 1] if jit is not None else 1.0
        err = np.where(alive, (sp * un) if n == 1 else (err * rf * un), err)

        if dp and n >= 2:
            # The predecessor's guard G_{n-1} = t0 + tau - (n-2)*delta
            # expires before (or exactly when) member n completes: its
            # single/sequential alert is the official one, whatever the
            # chain does afterwards (all later alerts are later sends;
            # on an exact tie the guard's event was scheduled first).
            guarded = alive & (tn >= prev_guard_fire)
            official_time = np.where(guarded, prev_guard_fire, official_time)
            official_level = np.where(guarded, level_prev, official_level)
            decided |= guarded
            alive &= ~guarded

        tc1 = err <= thr
        tc2 = (tn - t0) > tau - (n * delta + tg)
        succ_exists = (d + n) < roster
        finalize = alive & (tc1 | tc2 | ~succ_exists)
        official_time = np.where(finalize, tn, official_time)
        official_level = np.where(finalize, level_n, official_level)
        decided |= finalize
        alive &= ~finalize

        if not alive.any():
            break
        # Member n sends a coordination request (delivered tn + delta)
        # and, under done-propagation, arms its guard.
        deadline_n = t0 + tau - (n - 1) * delta
        guard_fire_n = tn + np.maximum(0.0, deadline_n - tn)
        arr_next = (d + n) * l1 - x
        sched_next = arr_next >= tn + delta
        active_next = dur > arr_next

        dead_next = alive & sched_next & ~active_next  # TC-3
        missed_next = alive & ~sched_next  # pass already gone by
        if dp:
            tc3 = dead_next | missed_next
            official_time = np.where(tc3, guard_fire_n, official_time)
            official_level = np.where(tc3, level_n, official_level)
            decided |= tc3
        else:
            # Successor-responsibility: a successor that cannot measure
            # delivers the inherited estimate at its arrival; a pass
            # that already went by means no alert at all.
            official_time = np.where(dead_next, arr_next, official_time)
            official_level = np.where(dead_next, level_n, official_level)
            decided |= dead_next | missed_next
        alive &= ~(dead_next | missed_next)

        start_n = np.where(alive, arr_next, start_n)
        prev_guard_fire = np.where(alive, guard_fire_n, prev_guard_fire)

    # Any replication still alive exhausted the tape (cannot happen for
    # the documented depth bound): let the oracle decide it.
    fallback |= alive

    has_alert = decided & detected & np.isfinite(official_time)
    latency = official_time - t0
    ok = has_alert & (latency <= tau + _TOL)
    levels = np.where(ok, official_level, 0).astype(np.uint8)
    return levels, detected, fallback


def sample_levels_vector(
    template: "ScenarioTemplate",
    rng: np.random.Generator,
    onsets: np.ndarray,
    durations: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized counterpart of ``ScenarioTemplate.sample_levels``:
    one ``(levels, detected)`` pair per ``(onset, duration)`` row,
    protocol randomness drawn from ``rng`` as tapes.  Rows the vector
    model cannot decide exactly are delegated to the scalar oracle on
    the same tape rows (divergence-mask fallback)."""
    from repro.simulation import batch as _batch

    with _batch._timed("vector"):
        onsets = np.ascontiguousarray(onsets, dtype=float)
        durations = np.ascontiguousarray(durations, dtype=float)
        count = len(onsets)
        tapes = draw_protocol_tapes(template, rng, count)
        if tapes.fallback_all:
            fallback = np.ones(count, dtype=bool)
            levels = np.zeros(count, dtype=np.uint8)
            detected = np.zeros(count, dtype=bool)
        elif template.geometry.overlapping:
            levels, detected, fallback = _overlap_levels(
                template, onsets, durations, tapes
            )
        else:
            levels, detected, fallback = _underlap_levels(
                template, onsets, durations, tapes
            )
        fallback_count = int(np.count_nonzero(fallback))
        if fallback_count:
            indices = np.flatnonzero(fallback)
            with _batch._timed("vector_fallback"):
                oracle_levels, oracle_detected = scalar_reference_levels(
                    template, onsets, durations, tapes, indices=indices
                )
            levels[indices] = oracle_levels
            detected[indices] = oracle_detected
    with _STATS_LOCK:
        _STATS["calls"] += 1
        _STATS["replications"] += count
        _STATS["fallbacks"] += fallback_count
    return levels, detected
