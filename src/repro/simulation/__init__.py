"""Monte-Carlo and integration simulations that cross-validate the
analytic models and exercise the full stack end to end."""

from repro.simulation.plane_process import (
    PlaneDegradationSimulation,
    simulate_capacity_distribution,
)
from repro.simulation.qos_montecarlo import (
    sample_qos_level,
    simulate_conditional_distribution,
    simulate_conditional_distribution_protocol,
)
from repro.simulation.scenarios import CoverageAccuracyScenario, LevelAccuracy

__all__ = [
    "CoverageAccuracyScenario",
    "LevelAccuracy",
    "PlaneDegradationSimulation",
    "sample_qos_level",
    "simulate_capacity_distribution",
    "simulate_conditional_distribution",
    "simulate_conditional_distribution_protocol",
]
