"""Monte-Carlo and integration simulations that cross-validate the
analytic models and exercise the full stack end to end."""

from repro.simulation.plane_process import (
    PlaneDegradationSimulation,
    simulate_capacity_distribution,
)
from repro.simulation.qos_montecarlo import (
    sample_qos_level,
    simulate_conditional_distribution,
    simulate_conditional_distribution_protocol,
)
from repro.simulation.scenarios import CoverageAccuracyScenario, LevelAccuracy
from repro.simulation.vector import (
    draw_protocol_tapes,
    sample_levels_vector,
    scalar_reference_levels,
    reset_vector_batch_stats,
    vector_batch_stats,
)

__all__ = [
    "CoverageAccuracyScenario",
    "LevelAccuracy",
    "PlaneDegradationSimulation",
    "draw_protocol_tapes",
    "sample_levels_vector",
    "sample_qos_level",
    "scalar_reference_levels",
    "reset_vector_batch_stats",
    "simulate_capacity_distribution",
    "simulate_conditional_distribution",
    "simulate_conditional_distribution_protocol",
    "vector_batch_stats",
]
