"""Monte-Carlo estimation of the conditional QoS distribution
``P(Y = y | k)``.

Two estimators, both independent of the closed forms in
:mod:`repro.analytic.qos_model` and used to cross-validate them:

* :func:`simulate_conditional_distribution` -- a fast sampler that
  applies the model's success rules directly (onset uniform over the
  cycle, exponential duration and computation time, Theorem 1/2
  windows);
* :func:`simulate_conditional_distribution_protocol` -- the heavyweight
  check: every sample runs the *full* OAQ message-passing protocol via
  :class:`~repro.protocol.runner.CenterlineScenario`.  Small systematic
  differences (the crosslink delay ``delta`` and computation bound
  ``Tg``, which the analytic model ignores) are bounded by the test
  tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.config import EvaluationParams
from repro.core.qos import QoSDistribution, QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.geometry.intervals import CoverageKind, FootprintCycle
from repro.geometry.plane import PlaneGeometry

__all__ = [
    "simulate_conditional_distribution",
    "simulate_conditional_distribution_protocol",
    "sample_qos_level",
]


def sample_qos_level(
    geometry: PlaneGeometry,
    params: EvaluationParams,
    scheme: Scheme,
    rng: np.random.Generator,
) -> QoSLevel:
    """Draw one signal and classify the QoS level it achieves under the
    model's assumptions (fast path, no protocol machinery)."""
    cycle = FootprintCycle(geometry)
    onset = float(rng.uniform(0.0, geometry.l1))
    duration = float(rng.exponential(1.0 / params.mu))
    computation = float(rng.exponential(1.0 / params.nu))
    tau = params.tau
    kind = cycle.interval_at(onset).kind

    if geometry.overlapping:
        # Always covered; detection at onset.  Level 3 requires reaching
        # (or starting inside) a double-coverage interval in time and
        # finishing the computation by the deadline.
        wait = cycle.wait_until_double_coverage(onset)
        if scheme is Scheme.BAQ and wait > 0.0:
            return QoSLevel.SINGLE
        if wait > 0.0 and duration <= wait:
            return QoSLevel.SINGLE  # signal died before the opportunity
        if wait + computation <= tau:
            return QoSLevel.SIMULTANEOUS_DUAL
        return QoSLevel.SINGLE

    # Underlapping plane.
    if kind is CoverageKind.GAP:
        time_to_coverage = cycle.wait_until_covered(onset)
        if duration <= time_to_coverage:
            return QoSLevel.MISSED
        # Detected late; the next revisit is a full cycle away, beyond
        # the deadline (Theorem 2's second condition cannot hold for
        # tau <= L1), so a single-coverage result is the ceiling.
        return QoSLevel.SINGLE
    # Onset inside alpha: detected immediately.
    if scheme.supports_sequential_coverage:
        wait = cycle.wait_until_next_satellite(onset)
        if duration > wait and wait + computation <= tau:
            return QoSLevel.SEQUENTIAL_DUAL
    return QoSLevel.SINGLE


def _distribution_from_counts(counts: Dict[QoSLevel, int], samples: int) -> QoSDistribution:
    return QoSDistribution(
        {level: counts.get(level, 0) / samples for level in QoSLevel}
    )


def simulate_conditional_distribution(
    geometry: PlaneGeometry,
    params: EvaluationParams,
    scheme: Scheme,
    *,
    samples: int = 100_000,
    seed: Optional[int] = None,
    vectorized: bool = True,
) -> QoSDistribution:
    """Monte-Carlo estimate of ``P(Y = y | k)``.

    Two implementations of the same rules: a numpy-vectorised sampler
    (default, ~100x faster) and the scalar :func:`sample_qos_level`
    loop, kept as the readable specification and cross-tested against
    the vectorised path.
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    if vectorized:
        return _simulate_vectorized(geometry, params, scheme, samples, rng)
    counts: Dict[QoSLevel, int] = {}
    for _ in range(samples):
        level = sample_qos_level(geometry, params, scheme, rng)
        counts[level] = counts.get(level, 0) + 1
    return _distribution_from_counts(counts, samples)


def _simulate_vectorized(
    geometry: PlaneGeometry,
    params: EvaluationParams,
    scheme: Scheme,
    samples: int,
    rng: np.random.Generator,
) -> QoSDistribution:
    """Vectorised implementation of the :func:`sample_qos_level`
    rules."""
    tau = params.tau
    onset = rng.uniform(0.0, geometry.l1, size=samples)
    duration = rng.exponential(1.0 / params.mu, size=samples)
    computation = rng.exponential(1.0 / params.nu, size=samples)
    levels = np.full(samples, int(QoSLevel.SINGLE))

    if geometry.overlapping:
        alpha_length = geometry.single_coverage_length
        wait = np.where(onset < alpha_length, alpha_length - onset, 0.0)
        reachable = wait + computation <= tau
        survives = (wait == 0.0) | (duration > wait)
        eligible = reachable & survives
        if scheme is Scheme.BAQ:
            eligible &= wait == 0.0
        levels[eligible] = int(QoSLevel.SIMULTANEOUS_DUAL)
    else:
        in_gap = onset >= geometry.single_coverage_length
        time_to_coverage = geometry.l1 - onset
        missed = in_gap & (duration <= time_to_coverage)
        levels[missed] = int(QoSLevel.MISSED)
        if scheme.supports_sequential_coverage:
            wait = geometry.l1 - onset
            sequential = (
                ~in_gap & (duration > wait) & (wait + computation <= tau)
            )
            levels[sequential] = int(QoSLevel.SEQUENTIAL_DUAL)

    counts = {
        level: int(np.count_nonzero(levels == int(level)))
        for level in QoSLevel
    }
    return _distribution_from_counts(counts, samples)


def simulate_conditional_distribution_protocol(
    geometry: PlaneGeometry,
    params: EvaluationParams,
    scheme: Scheme,
    *,
    samples: int = 2_000,
    seed: Optional[int] = None,
) -> QoSDistribution:
    """Monte-Carlo estimate of ``P(Y = y | k)`` where each sample runs
    the full message-passing protocol."""
    from repro.protocol.runner import CenterlineScenario

    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    counts: Dict[QoSLevel, int] = {}
    for index in range(samples):
        scenario = CenterlineScenario(
            geometry,
            params,
            scheme=scheme,
            seed=int(rng.integers(0, 2**63 - 1)),
        )
        outcome = scenario.run()
        counts[outcome.achieved_level] = counts.get(outcome.achieved_level, 0) + 1
    return _distribution_from_counts(counts, samples)
