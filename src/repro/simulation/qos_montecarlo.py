"""Monte-Carlo estimation of the conditional QoS distribution
``P(Y = y | k)``.

Two estimators, both independent of the closed forms in
:mod:`repro.analytic.qos_model` and used to cross-validate them:

* :func:`simulate_conditional_distribution` -- a fast sampler that
  applies the model's success rules directly (onset uniform over the
  cycle, exponential duration and computation time, Theorem 1/2
  windows).  The rules are evaluated by the fully vectorised
  :func:`classify_qos_levels` over ``(onset, duration, computation)``
  arrays; the scalar :func:`sample_qos_level` is kept as the readable
  specification and cross-tested against it.
* :func:`simulate_conditional_distribution_protocol` -- the heavyweight
  check: every sample runs the *full* OAQ message-passing protocol.
  The default batched path replays one
  :class:`~repro.simulation.batch.ScenarioTemplate` per cell; the
  legacy per-sample :class:`~repro.protocol.runner.CenterlineScenario`
  path is kept behind ``batched=False`` as the reference
  implementation.  Small systematic differences vs the analytic model
  (the crosslink delay ``delta`` and computation bound ``Tg``, which
  it ignores) are bounded by the test tolerances.

Variance reduction (all validated against the closed forms in the test
suite):

* **Common random numbers** -- :func:`simulate_paired_conditional_distributions`
  evaluates several schemes on the *same* ``(onset, duration,
  computation)`` draws, collapsing the variance of scheme-vs-scheme
  differences (the faults campaign applies the same pairing across
  fault plans).
* **Stratified onsets** -- ``onset_sampling="stratified"`` allocates
  onset draws proportionally over the cycle's alpha/beta (or
  alpha/gamma) interval structure instead of sampling the cycle
  position freely, removing the between-strata component of the
  variance.
* **Antithetic draws** -- ``antithetic=True`` pairs each sample with
  its inverse-transform mirror (onset ``L1 - x``, duration and
  computation flipped through the exponential CDF).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import EvaluationParams
from repro.core.qos import QoSDistribution, QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError
from repro.geometry.intervals import CoverageKind, FootprintCycle
from repro.geometry.plane import PlaneGeometry

__all__ = [
    "simulate_conditional_distribution",
    "simulate_conditional_distribution_protocol",
    "simulate_paired_conditional_distributions",
    "classify_qos_levels",
    "sample_qos_level",
    "draw_signal_variates",
]


def sample_qos_level(
    geometry: PlaneGeometry,
    params: EvaluationParams,
    scheme: Scheme,
    rng: np.random.Generator,
) -> QoSLevel:
    """Draw one signal and classify the QoS level it achieves under the
    model's assumptions (scalar specification; see
    :func:`classify_qos_levels` for the batched form)."""
    cycle = FootprintCycle(geometry)
    onset = float(rng.uniform(0.0, geometry.l1))
    duration = float(rng.exponential(1.0 / params.mu))
    computation = float(rng.exponential(1.0 / params.nu))
    tau = params.tau
    kind = cycle.interval_at(onset).kind

    if geometry.overlapping:
        # Always covered; detection at onset.  Level 3 requires reaching
        # (or starting inside) a double-coverage interval in time and
        # finishing the computation by the deadline.
        wait = cycle.wait_until_double_coverage(onset)
        if scheme is Scheme.BAQ and wait > 0.0:
            return QoSLevel.SINGLE
        if wait > 0.0 and duration <= wait:
            return QoSLevel.SINGLE  # signal died before the opportunity
        if wait + computation <= tau:
            return QoSLevel.SIMULTANEOUS_DUAL
        return QoSLevel.SINGLE

    # Underlapping plane.
    if kind is CoverageKind.GAP:
        time_to_coverage = cycle.wait_until_covered(onset)
        if duration <= time_to_coverage:
            return QoSLevel.MISSED
        # Detected late; the next revisit is a full cycle away, beyond
        # the deadline (Theorem 2's second condition cannot hold for
        # tau <= L1), so a single-coverage result is the ceiling.
        return QoSLevel.SINGLE
    # Onset inside alpha: detected immediately.
    if scheme.supports_sequential_coverage:
        wait = cycle.wait_until_next_satellite(onset)
        if duration > wait and wait + computation <= tau:
            return QoSLevel.SEQUENTIAL_DUAL
    return QoSLevel.SINGLE


def classify_qos_levels(
    geometry: PlaneGeometry,
    params: EvaluationParams,
    scheme: Scheme,
    onset: np.ndarray,
    duration: np.ndarray,
    computation: np.ndarray,
) -> np.ndarray:
    """Vectorised :func:`sample_qos_level`: classify the QoS level of
    every ``(onset, duration, computation)`` triple at once.

    Covers all four branches (overlap/underlap x OAQ/BAQ) and returns
    an integer array of QoS levels.  Element-for-element identical to
    the scalar rules -- the test suite pins the equivalence.
    """
    onset = np.asarray(onset, dtype=float)
    duration = np.asarray(duration, dtype=float)
    computation = np.asarray(computation, dtype=float)
    if not onset.shape == duration.shape == computation.shape:
        raise ConfigurationError(
            "onset, duration and computation arrays must share a shape"
        )
    tau = params.tau
    alpha_length = geometry.single_coverage_length
    levels = np.full(onset.shape, int(QoSLevel.SINGLE))

    if geometry.overlapping:
        wait = np.where(onset < alpha_length, alpha_length - onset, 0.0)
        reachable = wait + computation <= tau
        survives = (wait == 0.0) | (duration > wait)
        eligible = reachable & survives
        if scheme is Scheme.BAQ:
            eligible &= wait == 0.0
        levels[eligible] = int(QoSLevel.SIMULTANEOUS_DUAL)
    else:
        in_gap = onset >= alpha_length
        time_to_coverage = geometry.l1 - onset
        missed = in_gap & (duration <= time_to_coverage)
        levels[missed] = int(QoSLevel.MISSED)
        if scheme.supports_sequential_coverage:
            wait = geometry.l1 - onset
            sequential = (
                ~in_gap & (duration > wait) & (wait + computation <= tau)
            )
            levels[sequential] = int(QoSLevel.SEQUENTIAL_DUAL)
    return levels


def _distribution_from_counts(counts: Dict[QoSLevel, int], samples: int) -> QoSDistribution:
    return QoSDistribution(
        {level: counts.get(level, 0) / samples for level in QoSLevel}
    )


def _distribution_from_levels(levels: np.ndarray, samples: int) -> QoSDistribution:
    return QoSDistribution(
        {
            level: int(np.count_nonzero(levels == int(level))) / samples
            for level in QoSLevel
        }
    )


def _stratified_onsets(
    geometry: PlaneGeometry, samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Onset positions stratified over the cycle's interval structure.

    Each cycle interval (alpha, then beta or gamma) receives a sample
    allocation proportional to its length -- largest remainders break
    the rounding ties -- and positions are drawn uniformly *within*
    their stratum, eliminating the between-strata variance of plain
    uniform onset sampling.  The concatenated array is shuffled so
    downstream pairing (CRN across schemes, antithetic mirrors) sees no
    ordering artefact.
    """
    cycle = FootprintCycle(geometry)
    intervals = cycle.intervals
    lengths = np.array([interval.length for interval in intervals])
    quotas = samples * lengths / geometry.l1
    allocation = np.floor(quotas).astype(int)
    shortfall = samples - int(allocation.sum())
    if shortfall > 0:
        for index in np.argsort(quotas - np.floor(quotas))[::-1][:shortfall]:
            allocation[index] += 1
    parts = [
        rng.uniform(interval.start, interval.end, size=int(count))
        for interval, count in zip(intervals, allocation)
        if count > 0
    ]
    onsets = np.concatenate(parts) if parts else np.empty(0)
    rng.shuffle(onsets)
    return onsets


def draw_signal_variates(
    geometry: PlaneGeometry,
    params: EvaluationParams,
    samples: int,
    rng: np.random.Generator,
    *,
    onset_sampling: str = "uniform",
    antithetic: bool = False,
):
    """Draw the per-signal randomness ``(onset, duration, computation)``
    shared by the fast and protocol samplers.

    ``onset_sampling`` is ``"uniform"`` (the Poisson-arrival default)
    or ``"stratified"`` (see :func:`_stratified_onsets`).
    ``antithetic=True`` draws ``ceil(samples/2)`` base variates and
    mirrors them through the inverse transform: onsets reflect across
    the cycle (``L1 - x``), durations and computation times flip their
    uniform through the exponential CDF.  Both knobs preserve the
    marginal distributions exactly; they only introduce negative
    correlation between paired samples.
    """
    if onset_sampling not in ("uniform", "stratified"):
        raise ConfigurationError(
            f"onset_sampling must be 'uniform' or 'stratified', got "
            f"{onset_sampling!r}"
        )
    l1 = geometry.l1
    if antithetic:
        half = (samples + 1) // 2
        if onset_sampling == "stratified":
            base_onset = _stratified_onsets(geometry, half, rng)
        else:
            base_onset = rng.uniform(0.0, l1, size=half)
        u_duration = rng.random(half)
        u_computation = rng.random(half)
        # Inverse-transform exponentials so the mirror 1-u maps to a
        # valid draw of the same marginal.
        onset = np.concatenate([base_onset, l1 - base_onset])[:samples]
        duration = -np.log1p(
            -np.concatenate([u_duration, 1.0 - u_duration])[:samples]
        ) / params.mu
        computation = -np.log1p(
            -np.concatenate([u_computation, 1.0 - u_computation])[:samples]
        ) / params.nu
        return onset, duration, computation
    if onset_sampling == "stratified":
        onset = _stratified_onsets(geometry, samples, rng)
    else:
        onset = rng.uniform(0.0, l1, size=samples)
    duration = rng.exponential(1.0 / params.mu, size=samples)
    computation = rng.exponential(1.0 / params.nu, size=samples)
    return onset, duration, computation


def simulate_conditional_distribution(
    geometry: PlaneGeometry,
    params: EvaluationParams,
    scheme: Scheme,
    *,
    samples: int = 100_000,
    seed: Optional[int] = None,
    vectorized: bool = True,
    onset_sampling: str = "uniform",
    antithetic: bool = False,
) -> QoSDistribution:
    """Monte-Carlo estimate of ``P(Y = y | k)``.

    The default path draws ``(onset, duration, computation)`` arrays
    and classifies them with :func:`classify_qos_levels`;
    ``vectorized=False`` runs the scalar :func:`sample_qos_level` loop
    instead (the readable specification, ~100x slower).  Both are
    bit-reproducible under a fixed ``seed``.  ``onset_sampling`` and
    ``antithetic`` enable variance reduction (vectorised path only).
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    rng = np.random.default_rng(seed)
    if not vectorized:
        if onset_sampling != "uniform" or antithetic:
            raise ConfigurationError(
                "variance-reduction options require the vectorized path"
            )
        counts: Dict[QoSLevel, int] = {}
        for _ in range(samples):
            level = sample_qos_level(geometry, params, scheme, rng)
            counts[level] = counts.get(level, 0) + 1
        return _distribution_from_counts(counts, samples)
    onset, duration, computation = draw_signal_variates(
        geometry,
        params,
        samples,
        rng,
        onset_sampling=onset_sampling,
        antithetic=antithetic,
    )
    levels = classify_qos_levels(
        geometry, params, scheme, onset, duration, computation
    )
    return _distribution_from_levels(levels, samples)


def simulate_paired_conditional_distributions(
    geometry: PlaneGeometry,
    params: EvaluationParams,
    schemes: Sequence[Scheme],
    *,
    samples: int = 100_000,
    seed: Optional[int] = None,
    onset_sampling: str = "uniform",
    antithetic: bool = False,
) -> Dict[Scheme, QoSDistribution]:
    """Common-random-numbers estimate of ``P(Y = y | k)`` for several
    schemes: every scheme is classified over the *same* ``(onset,
    duration, computation)`` draws, so scheme-vs-scheme differences
    (e.g. the OAQ-BAQ level-2/3 gain the paper reports) carry sampling
    noise only where the schemes actually disagree.  Extends the fault
    campaign's paired-seed design to the QoS estimators.
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    if not schemes:
        raise ConfigurationError("at least one scheme is required")
    rng = np.random.default_rng(seed)
    onset, duration, computation = draw_signal_variates(
        geometry,
        params,
        samples,
        rng,
        onset_sampling=onset_sampling,
        antithetic=antithetic,
    )
    return {
        scheme: _distribution_from_levels(
            classify_qos_levels(
                geometry, params, scheme, onset, duration, computation
            ),
            samples,
        )
        for scheme in schemes
    }


def simulate_conditional_distribution_protocol(
    geometry: PlaneGeometry,
    params: EvaluationParams,
    scheme: Scheme,
    *,
    samples: int = 2_000,
    seed: Optional[int] = None,
    batched: bool = True,
    engine: str = "batch",
    onset_sampling: str = "uniform",
    antithetic: bool = False,
) -> QoSDistribution:
    """Monte-Carlo estimate of ``P(Y = y | k)`` where each sample runs
    the full message-passing protocol.

    The batched default builds one
    :class:`~repro.simulation.batch.ScenarioTemplate` for the cell and
    replays it per sample with a shared generator (deterministic under
    a fixed ``seed``, pinned statistically against the legacy path --
    see ``docs/SIMULATION.md``).  ``engine="vector"`` hands the whole
    cell to the struct-of-arrays engine of
    :mod:`repro.simulation.vector` instead (~100x the batched
    throughput; same marginal distribution, different draw order, so
    per-seed results differ sample-for-sample but remain deterministic
    and exact against the scalar oracle).  ``batched=False`` is the
    reference implementation: one :class:`CenterlineScenario` per
    sample, seeded from the same :class:`~numpy.random.SeedSequence`
    children.

    Seeds are derived via ``SeedSequence(seed).spawn`` (matching the
    fault campaign's per-cell design) rather than the collision-prone
    ``rng.integers`` draw the sampler used previously: spawned children
    are guaranteed-distinct streams, and the root entropy is preserved
    exactly instead of truncated to an int.
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    if batched:
        from repro.simulation.batch import ScenarioTemplate

        root = np.random.SeedSequence(seed)
        rng = np.random.default_rng(root)
        onsets, durations, _ = draw_signal_variates(
            geometry,
            params,
            samples,
            rng,
            onset_sampling=onset_sampling,
            antithetic=antithetic,
        )
        template = ScenarioTemplate(geometry, params, scheme=scheme)
        levels, _ = template.sample_levels(rng, onsets, durations, engine=engine)
        return _distribution_from_levels(levels, samples)

    if engine != "batch":
        raise ConfigurationError(
            "engine selection requires the batched path"
        )
    if onset_sampling != "uniform" or antithetic:
        raise ConfigurationError(
            "variance-reduction options require the batched path"
        )
    from repro.protocol.runner import CenterlineScenario

    children = np.random.SeedSequence(seed).spawn(samples)
    counts: Dict[QoSLevel, int] = {}
    for child in children:
        scenario = CenterlineScenario(geometry, params, scheme=scheme, seed=child)
        outcome = scenario.run()
        counts[outcome.achieved_level] = counts.get(outcome.achieved_level, 0) + 1
    return _distribution_from_counts(counts, samples)
