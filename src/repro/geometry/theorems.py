"""Opportunity windows from the paper's Theorems 1 and 2.

Theorem 1 (overlapping planes, ``Tr[k] < Tc``): position determination
by a *simultaneous* multiple coverage is possible only if the signal
occurs (1) inside a doubly-covered interval ``beta_i``, or (2) inside a
singly-covered interval ``alpha_i`` at most ``min(tau, L1 - L2)`` time
units before ``beta_i`` begins.

Theorem 2 (underlapping planes, ``Tr[k] >= Tc``): position
determination by a *sequential* multiple coverage is possible only if
(1) ``tau > L2`` and the signal occurs in ``alpha_i`` at most
``min(tau, L1)`` before ``alpha_{i+1}``, or (2) ``tau > L1`` and the
signal occurs in the gap ``gamma_i`` at most ``min(tau, L1 + L2)``
before ``alpha_{i+2}``.  With the reference deadline ``tau = 5 < Tc``,
``tau <= L1`` holds for every underlapping ``k``, so condition (2)
never applies -- the analytic model relies on that, and
:func:`sequential_window` mirrors it (condition (2) would require a
three-satellite chain, which the paper's setting caps at two).

Both windows are expressed in onset *waiting time* ``w``: the time from
signal onset until the opportunity (double coverage / next satellite)
arrives.  Because the onset position is uniform over the cycle, a
window of waiting times maps one-to-one onto a set of onset positions
of the same total measure, which is what the model integrates over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geometry.plane import PlaneGeometry

__all__ = [
    "OpportunityWindow",
    "simultaneous_window",
    "sequential_window",
    "theorem1_admits",
    "theorem2_admits",
]


@dataclass(frozen=True)
class OpportunityWindow:
    """A window of onset waiting times that admit a QoS opportunity.

    Attributes
    ----------
    wait_lo, wait_hi:
        Half-open range ``[wait_lo, wait_hi)`` of waiting times ``w``
        (minutes from signal onset until the opportunity arrives) for
        which the opportunity is reachable.  ``wait_lo == wait_hi``
        denotes an empty window.
    immediate_measure:
        Total cycle measure (minutes) of onset positions for which the
        opportunity is available immediately (``w = 0``); non-zero only
        for Theorem 1's ``beta`` intervals.
    cycle_length:
        ``L1[k]``, so probabilities are ``measure / cycle_length``.
    """

    wait_lo: float
    wait_hi: float
    immediate_measure: float
    cycle_length: float

    @property
    def waiting_measure(self) -> float:
        """Cycle measure of onsets that must wait ``w in [lo, hi)``."""
        return max(0.0, self.wait_hi - self.wait_lo)

    @property
    def total_measure(self) -> float:
        """Total cycle measure of admitting onset positions."""
        return self.waiting_measure + self.immediate_measure

    @property
    def probability_mass(self) -> float:
        """Fraction of the cycle from which the opportunity is reachable
        (ignoring signal-duration and computation-time losses)."""
        return self.total_measure / self.cycle_length

    def admits_wait(self, wait: float) -> bool:
        """Whether an onset whose opportunity arrives after ``wait``
        minutes lies inside the window (``wait = 0`` queries the
        immediate part)."""
        if wait == 0.0:
            return self.immediate_measure > 0.0 or self.wait_lo == 0.0
        return self.wait_lo <= wait < self.wait_hi or (
            wait < self.wait_hi and self.wait_lo == 0.0
        )


def simultaneous_window(geometry: PlaneGeometry, deadline: float) -> OpportunityWindow:
    """Theorem 1 window: onsets that can reach a **simultaneous dual
    coverage** within ``deadline`` minutes.

    Only defined for overlapping planes.  Onsets inside ``beta`` have
    the opportunity immediately (measure ``L2``); onsets inside
    ``alpha`` must wait ``w in (0, min(tau, L1 - L2)]`` for the
    overlapped footprints to arrive.
    """
    if deadline < 0:
        raise ConfigurationError(f"deadline must be >= 0, got {deadline}")
    if geometry.underlapping:
        raise ConfigurationError(
            "Theorem 1 applies to overlapping planes only "
            f"(k={geometry.active_satellites} underlaps)"
        )
    l_hat = min(geometry.single_coverage_length, deadline)
    return OpportunityWindow(
        wait_lo=0.0,
        wait_hi=l_hat,
        immediate_measure=geometry.l2,
        cycle_length=geometry.l1,
    )


def sequential_window(geometry: PlaneGeometry, deadline: float) -> OpportunityWindow:
    """Theorem 2 window (first condition): onsets that can reach a
    **sequential dual coverage** within ``deadline`` minutes.

    Only defined for underlapping planes.  A signal starting inside
    ``alpha_i`` waits ``w = L1 - x`` for the next satellite; the wait is
    at least ``L2`` (onset at the very end of ``alpha_i``) and must not
    exceed ``min(tau, L1)``.  The window is empty unless
    ``deadline > L2``.
    """
    if deadline < 0:
        raise ConfigurationError(f"deadline must be >= 0, got {deadline}")
    if geometry.overlapping:
        raise ConfigurationError(
            "Theorem 2 applies to underlapping planes only "
            f"(k={geometry.active_satellites} overlaps)"
        )
    l_tilde = min(geometry.l1, deadline)
    lo = geometry.l2
    hi = max(l_tilde, lo)  # empty window when deadline <= L2
    return OpportunityWindow(
        wait_lo=lo,
        wait_hi=hi,
        immediate_measure=0.0,
        cycle_length=geometry.l1,
    )


def theorem1_admits(
    geometry: PlaneGeometry, deadline: float, onset_position: float
) -> bool:
    """Whether a signal whose onset falls at ``onset_position`` (reduced
    to ``[0, L1)``, cycle starting at ``alpha``) satisfies Theorem 1's
    necessary condition for simultaneous dual coverage."""
    from repro.geometry.intervals import FootprintCycle

    cycle = FootprintCycle(geometry)
    wait = cycle.wait_until_double_coverage(onset_position)
    if wait == 0.0:
        return True
    return wait <= min(deadline, geometry.single_coverage_length)


def theorem2_admits(
    geometry: PlaneGeometry, deadline: float, onset_position: float
) -> bool:
    """Whether a signal whose onset falls at ``onset_position`` inside
    ``alpha`` satisfies Theorem 2's (first) necessary condition for
    sequential dual coverage.  Onsets in the gap never qualify under the
    reference deadline (``tau <= L1``)."""
    from repro.geometry.intervals import CoverageKind, FootprintCycle

    cycle = FootprintCycle(geometry)
    if cycle.interval_at(onset_position).kind is not CoverageKind.SINGLE:
        return False
    if deadline <= geometry.l2:
        return False
    wait = cycle.wait_until_next_satellite(onset_position)
    return wait <= min(deadline, geometry.l1)
