"""Footprint geometry of a single orbital plane (paper Sections 2 and 4.2.1).

The paper characterises a plane that has ``k`` active, evenly-phased
satellites by two time quantities:

* the **revisit time** ``Tr[k] = theta / k`` -- the time between the
  footprint centre of one satellite and the footprint centre of the next
  satellite passing the same ground location (``theta`` is the orbit
  period), and
* the **coverage time** ``Tc`` -- the maximum time a single ground
  location stays inside one satellite's footprint (the footprint
  "diameter" measured in time units).

Their relation determines the plane's geometric orientation:
``Tr[k] < Tc`` means adjacent footprints **overlap**, ``Tr[k] >= Tc``
means they **underlap** (are detached).  The auxiliary lengths
``L1[k] = Tr[k]`` and ``L2[k] = |Tc - Tr[k]|`` (paper Figure 5) recur
throughout the analytic QoS model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["PlaneGeometry", "REFERENCE_ORBIT_PERIOD", "REFERENCE_COVERAGE_TIME"]

#: Orbit period of the reference RF-geolocation constellation, minutes.
REFERENCE_ORBIT_PERIOD = 90.0

#: Coverage time of the reference constellation, minutes.
REFERENCE_COVERAGE_TIME = 9.0


@dataclass(frozen=True)
class PlaneGeometry:
    """Footprint-trajectory geometry of one orbital plane.

    Parameters
    ----------
    orbit_period:
        ``theta`` -- time for a satellite to orbit through the plane, in
        minutes (90 for the reference constellation).
    coverage_time:
        ``Tc`` -- maximum single-footprint dwell time over a ground
        location, in minutes (9 for the reference constellation).
    active_satellites:
        ``k`` -- number of operational satellites actively in service in
        the plane, assumed evenly phased (the paper's post-failure
        phasing adjustment).
    """

    orbit_period: float
    coverage_time: float
    active_satellites: int

    def __post_init__(self) -> None:
        if self.orbit_period <= 0:
            raise ConfigurationError(
                f"orbit_period must be positive, got {self.orbit_period}"
            )
        if self.coverage_time <= 0:
            raise ConfigurationError(
                f"coverage_time must be positive, got {self.coverage_time}"
            )
        if self.coverage_time >= self.orbit_period:
            raise ConfigurationError(
                "coverage_time must be smaller than the orbit period "
                f"(got Tc={self.coverage_time}, theta={self.orbit_period})"
            )
        if self.active_satellites < 1:
            raise ConfigurationError(
                f"active_satellites must be >= 1, got {self.active_satellites}"
            )

    @classmethod
    def reference(cls, active_satellites: int) -> "PlaneGeometry":
        """Geometry of the reference constellation's plane with ``k``
        active satellites (theta = 90 min, Tc = 9 min)."""
        return cls(
            orbit_period=REFERENCE_ORBIT_PERIOD,
            coverage_time=REFERENCE_COVERAGE_TIME,
            active_satellites=active_satellites,
        )

    # ------------------------------------------------------------------
    # Primary quantities
    # ------------------------------------------------------------------
    @property
    def revisit_time(self) -> float:
        """``Tr[k] = theta / k`` -- time distance between adjacent
        satellites in the plane, minutes."""
        return self.orbit_period / self.active_satellites

    @property
    def l1(self) -> float:
        """``L1[k]`` -- the cycle length of the footprint pattern seen by
        a fixed ground point on the trajectory centre line.

        The paper defines ``L1[k] = floor(Tr - Tc/2) + Tc/2`` which
        simplifies to ``Tr[k]`` (Figure 5); one full cycle passes every
        revisit period.
        """
        return self.revisit_time

    @property
    def l2(self) -> float:
        """``L2[k] = |Tc - Tr[k]|`` -- length of the doubly-covered
        interval when footprints overlap, or of the uncovered gap when
        they underlap."""
        return abs(self.coverage_time - self.revisit_time)

    @property
    def overlapping(self) -> bool:
        """Indicator ``I[k]`` (paper Eq. 1): ``True`` iff
        ``Tr[k] < Tc``, i.e. adjacent footprints overlap."""
        return self.revisit_time < self.coverage_time

    @property
    def underlapping(self) -> bool:
        """``True`` iff adjacent footprints are detached
        (``Tr[k] >= Tc``)."""
        return not self.overlapping

    @property
    def indicator(self) -> int:
        """``I[k]`` as the 0/1 integer used in the paper's Table 1."""
        return 1 if self.overlapping else 0

    # ------------------------------------------------------------------
    # Derived interval lengths (paper Figure 6 timing diagrams)
    # ------------------------------------------------------------------
    @property
    def single_coverage_length(self) -> float:
        """Length of the interval (``alpha_n``) during which a centre-line
        ground point is covered by exactly one footprint, per cycle.

        Equals ``L1 - L2``: ``2*Tr - Tc`` when overlapping, ``Tc`` when
        underlapping.
        """
        return self.l1 - self.l2

    @property
    def double_coverage_length(self) -> float:
        """Length of the doubly-covered interval (``beta_n``) per cycle;
        zero when footprints underlap."""
        return self.l2 if self.overlapping else 0.0

    @property
    def gap_length(self) -> float:
        """Length of the uncovered interval (``gamma_n``) per cycle; zero
        when footprints overlap."""
        return self.l2 if self.underlapping else 0.0

    # ------------------------------------------------------------------
    # Opportunity bounds
    # ------------------------------------------------------------------
    def max_consecutive_coverage(self, deadline: float) -> int:
        """``M[k]`` (paper Eq. 2): upper bound on the number of satellites
        that can consecutively capture a signal before ``deadline``
        (minutes from initial detection), in the underlapping case.

        Returns ``2 + floor((tau - L2)/L1)`` when ``tau > L2`` and 1
        otherwise.  Only meaningful when ``I[k] = 0``; for an
        overlapping plane the paper's opportunity is the simultaneous
        dual coverage instead, and this method raises.
        """
        if deadline < 0:
            raise ConfigurationError(f"deadline must be >= 0, got {deadline}")
        if self.overlapping:
            raise ConfigurationError(
                "M[k] is defined for the underlapping case (I[k]=0); "
                f"plane with k={self.active_satellites} overlaps"
            )
        if deadline > self.l2:
            return 2 + int(math.floor((deadline - self.l2) / self.l1))
        return 1

    @classmethod
    def underlap_threshold(
        cls,
        orbit_period: float = REFERENCE_ORBIT_PERIOD,
        coverage_time: float = REFERENCE_COVERAGE_TIME,
    ) -> int:
        """Largest ``k`` for which the plane underlaps, i.e. footprints
        are detached for every ``k`` at or below the returned value.

        For the reference constellation this is 10 ("the underlapping
        scenario will happen when k is dropped to below 11").
        """
        # Underlap iff theta / k >= Tc  iff  k <= theta / Tc.
        return int(math.floor(orbit_period / coverage_time))

    def with_active_satellites(self, k: int) -> "PlaneGeometry":
        """Return a copy of this geometry with ``k`` active satellites."""
        return PlaneGeometry(
            orbit_period=self.orbit_period,
            coverage_time=self.coverage_time,
            active_satellites=k,
        )
