"""Cycle/interval structure of a plane's footprint trajectory.

Paper Figure 6 breaks the time horizon observed by a fixed ground point
(on the centre line of a footprint trajectory) into a repeating cycle of
length ``L1[k]``:

* **overlapping** planes: a singly-covered interval ``alpha_n`` of
  length ``L1 - L2`` followed by a doubly-covered interval ``beta_n`` of
  length ``L2``;
* **underlapping** planes: a singly-covered interval ``alpha_n`` of
  length ``L1 - L2 = Tc`` followed by an uncovered gap ``gamma_n`` of
  length ``L2``.

:class:`FootprintCycle` materialises that structure and answers the
queries both the analytic model and the Monte-Carlo simulator need:
coverage multiplicity at a cycle position, waiting time until the next
double coverage / next footprint arrival, etc.  Positions are expressed
in minutes from the start of the ``alpha`` interval, modulo ``L1``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.geometry.plane import PlaneGeometry

__all__ = ["CoverageKind", "Interval", "FootprintCycle"]


class CoverageKind(enum.Enum):
    """Coverage multiplicity class of a cycle interval."""

    SINGLE = "single"  #: covered by exactly one footprint (alpha)
    DOUBLE = "double"  #: covered by two overlapped footprints (beta)
    GAP = "gap"  #: covered by no footprint (gamma)

    @property
    def multiplicity(self) -> int:
        """Number of footprints covering the point in this interval."""
        if self is CoverageKind.SINGLE:
            return 1
        if self is CoverageKind.DOUBLE:
            return 2
        return 0


@dataclass(frozen=True)
class Interval:
    """A half-open sub-interval ``[start, end)`` of the footprint cycle."""

    kind: CoverageKind
    start: float
    end: float

    @property
    def length(self) -> float:
        """Length of the interval in minutes."""
        return self.end - self.start

    def contains(self, position: float) -> bool:
        """Whether ``position`` (already reduced modulo the cycle) falls
        inside this interval."""
        return self.start <= position < self.end


class FootprintCycle:
    """The repeating coverage pattern a centre-line ground point sees.

    Parameters
    ----------
    geometry:
        The plane geometry whose cycle is materialised.
    """

    def __init__(self, geometry: PlaneGeometry):
        self._geometry = geometry
        alpha = Interval(CoverageKind.SINGLE, 0.0, geometry.single_coverage_length)
        if geometry.overlapping:
            tail_kind = CoverageKind.DOUBLE
        else:
            tail_kind = CoverageKind.GAP
        self._intervals: List[Interval] = [alpha]
        if geometry.l2 > 0.0:
            self._intervals.append(Interval(tail_kind, alpha.end, geometry.l1))

    @property
    def geometry(self) -> PlaneGeometry:
        """The plane geometry backing this cycle."""
        return self._geometry

    @property
    def length(self) -> float:
        """Cycle length ``L1[k]`` in minutes."""
        return self._geometry.l1

    @property
    def intervals(self) -> List[Interval]:
        """The cycle's intervals, in order, starting with ``alpha``."""
        return list(self._intervals)

    def reduce(self, position: float) -> float:
        """Reduce an absolute position to ``[0, L1)``."""
        reduced = math.fmod(position, self.length)
        if reduced < 0:
            reduced += self.length
        return reduced

    def interval_at(self, position: float) -> Interval:
        """The interval containing ``position`` (any real number)."""
        reduced = self.reduce(position)
        for interval in self._intervals:
            if interval.contains(reduced):
                return interval
        # fmod can return the cycle length itself due to rounding;
        # treat it as position 0.
        return self._intervals[0]

    def coverage_multiplicity(self, position: float) -> int:
        """Number of footprints covering the point at ``position``."""
        return self.interval_at(position).kind.multiplicity

    # ------------------------------------------------------------------
    # Waiting-time queries (all in minutes, from ``position``)
    # ------------------------------------------------------------------
    def wait_until_double_coverage(self, position: float) -> float:
        """Time until the ground point is next covered by two overlapped
        footprints.  Zero if it already is.

        Raises :class:`ConfigurationError` for an underlapping plane,
        where simultaneous coverage never occurs.
        """
        if self._geometry.underlapping:
            raise ConfigurationError(
                "double coverage never occurs on an underlapping plane"
            )
        reduced = self.reduce(position)
        beta_start = self._geometry.single_coverage_length
        if reduced >= beta_start:
            return 0.0
        return beta_start - reduced

    def wait_until_covered(self, position: float) -> float:
        """Time until the ground point is next inside *any* footprint.
        Zero if it already is (overlapping planes always return 0)."""
        reduced = self.reduce(position)
        interval = self.interval_at(reduced)
        if interval.kind is not CoverageKind.GAP:
            return 0.0
        return self.length - reduced

    def wait_until_next_satellite(self, position: float) -> float:
        """Time until the footprint of the *next* satellite (the one
        following the satellite whose footprint defines the current
        cycle) reaches the ground point.

        For a signal that starts at ``position`` inside ``alpha_i``
        (covered by satellite ``i``), this is the sequential-coverage
        waiting time of Theorem 2: the next ``alpha`` begins one full
        cycle after the current one.
        """
        reduced = self.reduce(position)
        return self.length - reduced

    def time_covered_during(self, position: float, duration: float) -> float:
        """Total time within ``[position, position + duration)`` during
        which the ground point is covered by at least one footprint.

        Useful for measurement-collection modelling: an emitter can only
        be measured while covered and emitting.
        """
        if duration < 0:
            raise ConfigurationError(f"duration must be >= 0, got {duration}")
        if self._geometry.overlapping:
            return duration
        covered = 0.0
        full_cycles, remainder = divmod(duration, self.length)
        covered += full_cycles * self._geometry.single_coverage_length
        pos = self.reduce(position)
        remaining = remainder
        while remaining > 1e-12:
            interval = self.interval_at(pos)
            step = min(remaining, interval.end - pos)
            if interval.kind is not CoverageKind.GAP:
                covered += step
            pos = self.reduce(pos + step)
            remaining -= step
        return covered
