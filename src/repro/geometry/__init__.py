"""Footprint geometry of orbital planes (paper Sections 2 and 4.2.1).

Public surface:

* :class:`~repro.geometry.plane.PlaneGeometry` -- ``Tr[k]``, ``Tc``,
  ``L1[k]``, ``L2[k]``, indicator ``I[k]`` and opportunity bound
  ``M[k]``;
* :class:`~repro.geometry.intervals.FootprintCycle` -- the alpha/beta/
  gamma cycle a ground point observes (paper Figure 6);
* :func:`~repro.geometry.theorems.simultaneous_window` and
  :func:`~repro.geometry.theorems.sequential_window` -- Theorems 1-2
  opportunity windows.
"""

from repro.geometry.intervals import CoverageKind, FootprintCycle, Interval
from repro.geometry.plane import (
    REFERENCE_COVERAGE_TIME,
    REFERENCE_ORBIT_PERIOD,
    PlaneGeometry,
)
from repro.geometry.theorems import (
    OpportunityWindow,
    sequential_window,
    simultaneous_window,
    theorem1_admits,
    theorem2_admits,
)

__all__ = [
    "CoverageKind",
    "FootprintCycle",
    "Interval",
    "OpportunityWindow",
    "PlaneGeometry",
    "REFERENCE_COVERAGE_TIME",
    "REFERENCE_ORBIT_PERIOD",
    "sequential_window",
    "simultaneous_window",
    "theorem1_admits",
    "theorem2_admits",
]
