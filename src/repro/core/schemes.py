"""QoS-enhancement schemes compared in the paper's evaluation.

* **OAQ** -- opportunity-adaptive QoS enhancement: in the overlapping
  case the first detecting satellite withholds its preliminary result
  and waits (within the deadline) for overlapped footprints to arrive;
  in the underlapping case surviving satellites that consecutively
  revisit the target coordinate for iterative accuracy improvement.
* **BAQ** -- basic fault-adaptive QoS enhancement: the constellation is
  still protected by in-orbit spares and by scheduled and
  threshold-triggered ground-spare deployment, but delivers the result
  right after the initial computation, so sequential dual coverage
  (QoS level 2) is never achieved and simultaneous dual coverage only
  happens if the signal starts inside an overlapped region.
"""

from __future__ import annotations

import enum

__all__ = ["Scheme"]


class Scheme(enum.Enum):
    """Identifier of the QoS-enhancement scheme under evaluation."""

    OAQ = "oaq"
    BAQ = "baq"

    @property
    def waits_for_opportunity(self) -> bool:
        """Whether the scheme withholds a preliminary result to exploit
        an upcoming coverage opportunity."""
        return self is Scheme.OAQ

    @property
    def supports_sequential_coverage(self) -> bool:
        """Whether QoS level 2 (sequential dual coverage) is reachable
        under this scheme."""
        return self is Scheme.OAQ

    def __str__(self) -> str:
        return self.name
