"""Core OAQ concepts: QoS spectrum and measures, schemes,
configuration, opportunity calculus and the evaluation facade."""

from repro.core.config import (
    REFERENCE_CONSTELLATION,
    ConstellationConfig,
    EvaluationParams,
)
from repro.core.framework import OAQFramework
from repro.core.opportunity import (
    max_chain_length,
    tc2_holds,
    tc2_local_threshold,
    wait_deadline,
)
from repro.core.qos import QOS_SPECTRUM, QoSDistribution, QoSLevel
from repro.core.schemes import Scheme

__all__ = [
    "ConstellationConfig",
    "EvaluationParams",
    "OAQFramework",
    "QOS_SPECTRUM",
    "QoSDistribution",
    "QoSLevel",
    "REFERENCE_CONSTELLATION",
    "Scheme",
    "max_chain_length",
    "tc2_holds",
    "tc2_local_threshold",
    "wait_deadline",
]
