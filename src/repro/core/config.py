"""Configuration objects shared by the analytic model, the simulators
and the protocol (paper Sections 2 and 4).

Two dataclasses capture the paper's parameter space:

* :class:`ConstellationConfig` -- the static design of the reference RF
  geolocation constellation (7 planes x 14 active satellites + 2
  in-orbit spares, 90-minute period, 9-minute coverage time);
* :class:`EvaluationParams` -- the per-experiment knobs of Section 4
  (deadline ``tau``, signal-termination rate ``mu``, computation rate
  ``nu``, node-failure rate ``lambda``, deployment threshold ``eta``
  and scheduled-deployment period ``phi``).

Time units follow the paper: the QoS model is in **minutes**, the
capacity model in **hours** (see :mod:`repro.units`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import ConfigurationError
from repro.geometry.plane import PlaneGeometry

__all__ = ["ConstellationConfig", "EvaluationParams", "REFERENCE_CONSTELLATION"]


@dataclass(frozen=True)
class ConstellationConfig:
    """Static design parameters of a constellation.

    Attributes
    ----------
    planes:
        Number of orbital planes (7 in the reference design).
    active_per_plane:
        Satellites intended to be actively in service per plane (14).
    in_orbit_spares_per_plane:
        In-orbit spares that can replace failed satellites in the same
        plane (2).
    orbit_period_minutes:
        ``theta`` -- time to orbit through a plane (90 minutes).
    coverage_time_minutes:
        ``Tc`` -- maximum single-footprint dwell time (9 minutes).
    """

    planes: int = 7
    active_per_plane: int = 14
    in_orbit_spares_per_plane: int = 2
    orbit_period_minutes: float = 90.0
    coverage_time_minutes: float = 9.0

    def __post_init__(self) -> None:
        if self.planes < 1:
            raise ConfigurationError(f"planes must be >= 1, got {self.planes}")
        if self.active_per_plane < 1:
            raise ConfigurationError(
                f"active_per_plane must be >= 1, got {self.active_per_plane}"
            )
        if self.in_orbit_spares_per_plane < 0:
            raise ConfigurationError(
                "in_orbit_spares_per_plane must be >= 0, got "
                f"{self.in_orbit_spares_per_plane}"
            )
        # Delegate period/coverage validation to PlaneGeometry.
        self.plane_geometry(self.active_per_plane)

    @property
    def total_active(self) -> int:
        """Active satellites across the constellation (98)."""
        return self.planes * self.active_per_plane

    @property
    def total_satellites(self) -> int:
        """Active plus in-orbit spares (112)."""
        return self.planes * (self.active_per_plane + self.in_orbit_spares_per_plane)

    def plane_geometry(self, active_satellites: int) -> PlaneGeometry:
        """Geometry of one plane with ``k`` active satellites."""
        return PlaneGeometry(
            orbit_period=self.orbit_period_minutes,
            coverage_time=self.coverage_time_minutes,
            active_satellites=active_satellites,
        )

    @property
    def underlap_threshold(self) -> int:
        """Largest ``k`` at which a plane's footprints underlap (10 for
        the reference design)."""
        return PlaneGeometry.underlap_threshold(
            self.orbit_period_minutes, self.coverage_time_minutes
        )


#: The JPL reference RF geolocation constellation of the paper.
REFERENCE_CONSTELLATION = ConstellationConfig()


@dataclass(frozen=True)
class EvaluationParams:
    """Per-experiment parameters of the paper's Section 4 evaluation.

    Attributes
    ----------
    deadline_minutes:
        ``tau`` -- alert-message-delivery deadline, measured from the
        initial detection (5 minutes in the paper's experiments).
    signal_termination_rate:
        ``mu`` -- rate of the exponential signal duration, per minute
        (0.2 or 0.5 in the paper).
    computation_rate:
        ``nu`` -- rate of the exponential iterative-geolocation
        computation time, per minute (30 in the paper).
    node_failure_rate_per_hour:
        ``lambda`` -- per-satellite failure rate, per hour (swept over
        ``[1e-5, 1e-4]``).
    deployment_threshold:
        ``eta`` -- ground-spare deployment triggers when the number of
        operational satellites in a plane drops to this value (10 in
        Fig. 7, 12 in Figs. 8-9).
    scheduled_deployment_hours:
        ``phi`` -- period of the scheduled ground-spare deployment
        (30000 hours).
    replacement_latency_hours:
        Launch-to-arrival latency of a threshold-triggered replacement
        ground spare.  The paper does not publish this value, but its
        Fig. 7 requires it to be non-zero (``k = eta - 1`` is reachable
        while ``P(k = eta)`` dominates at high ``lambda``).  The default
        is our calibration; see EXPERIMENTS.md.
    crosslink_delay_minutes:
        ``delta`` -- maximum inter-satellite message-delivery delay used
        by the protocol's TC-2 threshold.
    geolocation_time_minutes:
        ``Tg`` -- maximum time for one geolocation computation, used by
        the protocol's TC-2 threshold.
    error_threshold_km:
        TC-1 -- estimated-error threshold below which coordination
        stops because the result is already good enough.
    """

    deadline_minutes: float = 5.0
    signal_termination_rate: float = 0.2
    computation_rate: float = 30.0
    node_failure_rate_per_hour: float = 1e-5
    deployment_threshold: int = 10
    scheduled_deployment_hours: float = 30000.0
    replacement_latency_hours: float = 168.0
    crosslink_delay_minutes: float = 0.05
    geolocation_time_minutes: float = 0.5
    error_threshold_km: float = 1.0
    constellation: ConstellationConfig = field(default_factory=ConstellationConfig)

    def __post_init__(self) -> None:
        if self.deadline_minutes < 0:
            raise ConfigurationError(
                f"deadline_minutes must be >= 0, got {self.deadline_minutes}"
            )
        if self.signal_termination_rate <= 0:
            raise ConfigurationError(
                "signal_termination_rate must be positive, got "
                f"{self.signal_termination_rate}"
            )
        if self.computation_rate <= 0:
            raise ConfigurationError(
                f"computation_rate must be positive, got {self.computation_rate}"
            )
        if self.node_failure_rate_per_hour <= 0:
            raise ConfigurationError(
                "node_failure_rate_per_hour must be positive, got "
                f"{self.node_failure_rate_per_hour}"
            )
        if not (1 <= self.deployment_threshold <= self.constellation.active_per_plane):
            raise ConfigurationError(
                "deployment_threshold must be between 1 and active_per_plane, got "
                f"{self.deployment_threshold}"
            )
        if self.scheduled_deployment_hours <= 0:
            raise ConfigurationError(
                "scheduled_deployment_hours must be positive, got "
                f"{self.scheduled_deployment_hours}"
            )
        if self.replacement_latency_hours <= 0:
            raise ConfigurationError(
                "replacement_latency_hours must be positive, got "
                f"{self.replacement_latency_hours}"
            )
        if self.crosslink_delay_minutes < 0:
            raise ConfigurationError(
                "crosslink_delay_minutes must be >= 0, got "
                f"{self.crosslink_delay_minutes}"
            )
        if self.geolocation_time_minutes < 0:
            raise ConfigurationError(
                "geolocation_time_minutes must be >= 0, got "
                f"{self.geolocation_time_minutes}"
            )

    # Convenience aliases matching the paper's notation ----------------
    @property
    def tau(self) -> float:
        """Deadline ``tau`` (minutes)."""
        return self.deadline_minutes

    @property
    def mu(self) -> float:
        """Signal-termination rate ``mu`` (per minute)."""
        return self.signal_termination_rate

    @property
    def nu(self) -> float:
        """Computation-completion rate ``nu`` (per minute)."""
        return self.computation_rate

    @property
    def lam(self) -> float:
        """Node-failure rate ``lambda`` (per hour)."""
        return self.node_failure_rate_per_hour

    @property
    def eta(self) -> int:
        """Deployment threshold ``eta``."""
        return self.deployment_threshold

    @property
    def phi(self) -> float:
        """Scheduled-deployment period ``phi`` (hours)."""
        return self.scheduled_deployment_hours

    @property
    def delta(self) -> float:
        """Crosslink delay ``delta`` (minutes)."""
        return self.crosslink_delay_minutes

    @property
    def tg(self) -> float:
        """Geolocation computation bound ``Tg`` (minutes)."""
        return self.geolocation_time_minutes

    @property
    def mean_signal_duration(self) -> float:
        """``1/mu`` in minutes."""
        return 1.0 / self.signal_termination_rate

    def with_(self, **changes) -> "EvaluationParams":
        """Return a copy with the given fields replaced (thin wrapper
        over :func:`dataclasses.replace` for sweep loops)."""
        return replace(self, **changes)

    def capacity_range(self, minimum: int = 9) -> Tuple[int, ...]:
        """The ``k`` values retained by paper Eq. (3) (9..14 by
        default; smaller ``k`` neglected as extremely unlikely)."""
        return tuple(range(minimum, self.constellation.active_per_plane + 1))
