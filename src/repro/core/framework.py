"""High-level facade over the reproduction.

:class:`OAQFramework` wires the pieces together the way the paper's
evaluation does: closed-form conditional QoS distributions, the SAN
capacity model, the Eq. (3) composition, and the simulation
cross-checks -- all from one :class:`~repro.core.config.EvaluationParams`.

    >>> from repro import OAQFramework, EvaluationParams, Scheme, QoSLevel
    >>> framework = OAQFramework(EvaluationParams(node_failure_rate_per_hour=1e-4))
    >>> framework.qos_measure(Scheme.OAQ, QoSLevel.SEQUENTIAL_DUAL)  # P(Y >= 2)
    0.39...
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analytic.capacity import CapacityModelConfig, capacity_distribution
from repro.analytic.composition import compose
from repro.analytic.qos_model import conditional_distribution
from repro.core.config import EvaluationParams
from repro.core.qos import QoSDistribution, QoSLevel
from repro.core.schemes import Scheme
from repro.errors import ConfigurationError

__all__ = ["OAQFramework"]


class OAQFramework:
    """One-stop evaluation of the OAQ / BAQ QoS measures.

    Parameters
    ----------
    params:
        The experiment's parameters (Section 4 notation).
    capacity_stages:
        Erlang stages for the deterministic timers of the capacity SAN.
    min_capacity:
        Smallest ``k`` retained in the Eq. (3) truncation.  Defaults to
        ``eta - 1`` -- for the paper's ``eta = 10`` that is the k >= 9
        truncation of Eq. (3); the sustain-at-threshold policy makes
        deeper excursions extremely unlikely.
    """

    def __init__(
        self,
        params: EvaluationParams,
        *,
        capacity_stages: int = 24,
        min_capacity: Optional[int] = None,
    ):
        if min_capacity is None:
            min_capacity = max(1, params.eta - 1)
        if min_capacity < 1:
            raise ConfigurationError(f"min_capacity must be >= 1, got {min_capacity}")
        self.params = params
        self.capacity_stages = capacity_stages
        self.min_capacity = min_capacity
        self._capacity_cache: Optional[Dict[int, float]] = None

    # ------------------------------------------------------------------
    # Constituent measures
    # ------------------------------------------------------------------
    def conditional_qos(self, capacity: int, scheme: Scheme) -> QoSDistribution:
        """``P(Y = y | k)`` for this experiment's parameters."""
        geometry = self.params.constellation.plane_geometry(capacity)
        return conditional_distribution(geometry, self.params, scheme)

    def capacity_probabilities(self, *, truncate: bool = True) -> Dict[int, float]:
        """``P(k)`` from the SAN capacity model.

        The solve itself is memoized process-wide on the frozen
        ``(CapacityModelConfig, stages)`` key (see
        :mod:`repro.analytic.solve_cache`), so distinct framework
        instances over the same capacity parameters -- e.g. every point
        of a ``tau``/``mu`` sweep -- share one solve; this instance
        additionally keeps a direct reference to skip the key lookup.

        With ``truncate`` the paper's Eq. (3) truncation is applied:
        only ``k >= min_capacity`` is kept (the composition renormalises
        the small missing mass).
        """
        if self._capacity_cache is None:
            config = CapacityModelConfig.from_params(self.params)
            self._capacity_cache = capacity_distribution(
                config, stages=self.capacity_stages
            )
        distribution = self._capacity_cache
        if not truncate:
            return dict(distribution)
        floor = self.min_capacity
        while floor > 1:
            retained = {k: p for k, p in distribution.items() if k >= floor}
            if sum(retained.values()) >= 0.96:
                return retained
            # Aggressive policies (long replacement latencies, low
            # thresholds) push real mass below the Eq. (3) floor;
            # extend the truncation rather than mis-normalise.
            floor -= 1
        return {k: p for k, p in distribution.items() if k >= 1}

    # ------------------------------------------------------------------
    # Composed measure (Eq. 3)
    # ------------------------------------------------------------------
    def qos_distribution(self, scheme: Scheme) -> QoSDistribution:
        """The unconditional ``P(Y = y)`` for ``scheme``."""
        capacity_probs = self.capacity_probabilities()
        return compose(
            capacity_probs,
            lambda k: self.conditional_qos(k, scheme),
        )

    def qos_measure(self, scheme: Scheme, level: QoSLevel) -> float:
        """The paper's QoS measure ``P(Y >= level)``."""
        return self.qos_distribution(scheme).at_least(level)

    def compare_schemes(self, level: QoSLevel) -> Dict[Scheme, float]:
        """``P(Y >= level)`` for OAQ and BAQ side by side."""
        return {
            scheme: self.qos_measure(scheme, level)
            for scheme in (Scheme.OAQ, Scheme.BAQ)
        }

    def qos_gain(self, level: QoSLevel) -> float:
        """Absolute OAQ-over-BAQ gain in ``P(Y >= level)``."""
        comparison = self.compare_schemes(level)
        return comparison[Scheme.OAQ] - comparison[Scheme.BAQ]

    # ------------------------------------------------------------------
    # Simulation cross-checks
    # ------------------------------------------------------------------
    def simulate_conditional_qos(
        self,
        capacity: int,
        scheme: Scheme,
        *,
        samples: int = 100_000,
        seed: Optional[int] = None,
    ) -> QoSDistribution:
        """Monte-Carlo estimate of ``P(Y = y | k)`` (rule-based)."""
        from repro.simulation.qos_montecarlo import simulate_conditional_distribution

        geometry = self.params.constellation.plane_geometry(capacity)
        return simulate_conditional_distribution(
            geometry, self.params, scheme, samples=samples, seed=seed
        )

    def simulate_capacity_probabilities(
        self,
        *,
        horizon_hours: float = 3.0e6,
        seed: Optional[int] = None,
    ) -> Dict[int, float]:
        """Monte-Carlo estimate of ``P(k)`` from the independent DES."""
        from repro.simulation.plane_process import simulate_capacity_distribution

        config = CapacityModelConfig.from_params(self.params)
        return simulate_capacity_distribution(
            config, horizon_hours=horizon_hours, seed=seed
        )

    def sweep(self, field: str, values, scheme: Scheme, level: QoSLevel):
        """Evaluate ``P(Y >= level)`` across a parameter sweep.

        Returns ``[(value, probability), ...]``.  Each point uses a
        fresh framework; the global capacity memoization means points
        that do not change the capacity parameters (``tau``, ``mu``,
        ``nu``) still share a single SAN solve.  For parallel grids and
        full tables use :class:`repro.experiments.engine.SweepRunner`.
        """
        results = []
        for value in values:
            params = self.params.with_(**{field: value})
            framework = OAQFramework(
                params,
                capacity_stages=self.capacity_stages,
                min_capacity=self.min_capacity,
            )
            results.append((value, framework.qos_measure(scheme, level)))
        return results
