"""QoS spectrum of the reference geolocation constellation (paper
Section 4.2.1, Table 1).

The constellation's service is rated on a four-level spectrum ``Y``:

======  ======================  =============================================
 Y      name                    meaning
======  ======================  =============================================
 3      simultaneous dual       position determined from two satellites
                                covering the target *at the same time*
                                (possible only when footprints overlap)
 2      sequential dual         position refined by two satellites that
                                *consecutively* revisit the target
                                (possible only when footprints underlap,
                                and only under the OAQ scheme)
 1      single coverage         position determined from a single
                                satellite's measurements
 0      missing target          the signal terminated before any footprint
                                arrived (possible only when footprints
                                underlap)
======  ======================  =============================================

The paper's QoS measure is ``P(Y >= y)`` -- the probability that the
system delivers a geolocation result rated at level ``y`` or above,
given that a signal occurs.  :class:`QoSDistribution` carries a full
distribution over levels and exposes that measure.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, Mapping

from repro.errors import ConfigurationError

__all__ = ["QoSLevel", "QoSDistribution", "QOS_SPECTRUM"]


class QoSLevel(enum.IntEnum):
    """The four QoS levels of the reference constellation."""

    MISSED = 0
    SINGLE = 1
    SEQUENTIAL_DUAL = 2
    SIMULTANEOUS_DUAL = 3

    @property
    def description(self) -> str:
        """Human-readable description used in reports."""
        return _DESCRIPTIONS[self]

    @classmethod
    def achievable_levels(cls, overlapping: bool) -> "tuple[QoSLevel, ...]":
        """Levels achievable under the given geometric orientation
        (paper Table 1, independent of scheme)."""
        if overlapping:
            return (cls.SIMULTANEOUS_DUAL, cls.SINGLE)
        return (cls.SEQUENTIAL_DUAL, cls.SINGLE, cls.MISSED)


_DESCRIPTIONS: Dict[QoSLevel, str] = {
    QoSLevel.MISSED: "missing target",
    QoSLevel.SINGLE: "single coverage",
    QoSLevel.SEQUENTIAL_DUAL: "sequential dual coverage",
    QoSLevel.SIMULTANEOUS_DUAL: "simultaneous dual coverage",
}

#: All levels, highest first (handy for report tables).
QOS_SPECTRUM = tuple(sorted(QoSLevel, reverse=True))


class QoSDistribution:
    """A probability distribution over :class:`QoSLevel`.

    Used both for the conditional distributions ``P(Y = y | k)`` and
    for the composed measure ``P(Y = y)`` of paper Eq. (3).
    """

    __slots__ = ("_probs",)

    def __init__(self, probabilities: Mapping[QoSLevel, float], *, tolerance: float = 1e-9):
        probs = {level: 0.0 for level in QoSLevel}
        for level, p in probabilities.items():
            level = QoSLevel(level)
            if p < -tolerance:
                raise ConfigurationError(
                    f"probability for {level.name} is negative: {p}"
                )
            probs[level] = max(0.0, float(p))
        total = sum(probs.values())
        if not math.isclose(total, 1.0, abs_tol=max(tolerance, 1e-6)):
            raise ConfigurationError(
                f"QoS probabilities must sum to 1, got {total!r} ({probs!r})"
            )
        self._probs = probs

    @classmethod
    def degenerate(cls, level: QoSLevel) -> "QoSDistribution":
        """Distribution with all mass at ``level``."""
        return cls({level: 1.0})

    @classmethod
    def mixture(
        cls,
        components: Iterable["tuple[float, QoSDistribution]"],
        *,
        tolerance: float = 1e-6,
    ) -> "QoSDistribution":
        """Weighted mixture ``sum_i w_i * D_i`` (weights must sum to 1
        up to ``tolerance``; they are renormalised to absorb truncation
        such as the paper's neglected ``k < 9`` terms in Eq. (3))."""
        weights_and_dists = list(components)
        total_weight = sum(w for w, _ in weights_and_dists)
        if total_weight <= 0:
            raise ConfigurationError("mixture weights must have positive sum")
        if abs(total_weight - 1.0) > tolerance:
            raise ConfigurationError(
                f"mixture weights must sum to 1 within {tolerance}, got {total_weight}"
            )
        probs = {level: 0.0 for level in QoSLevel}
        for weight, dist in weights_and_dists:
            for level in QoSLevel:
                probs[level] += weight * dist[level] / total_weight
        return cls(probs)

    def __getitem__(self, level: QoSLevel) -> float:
        """``P(Y = level)``."""
        return self._probs[QoSLevel(level)]

    def probability(self, level: QoSLevel) -> float:
        """``P(Y = level)`` (alias of ``dist[level]``)."""
        return self[level]

    def at_least(self, level: QoSLevel) -> float:
        """The paper's QoS measure ``P(Y >= level)``."""
        level = QoSLevel(level)
        return min(1.0, sum(p for lv, p in self._probs.items() if lv >= level))

    def expected_level(self) -> float:
        """Mean QoS level ``E[Y]`` -- a convenient scalar summary."""
        return sum(int(level) * p for level, p in self._probs.items())

    def as_dict(self) -> Dict[QoSLevel, float]:
        """Copy of the underlying probabilities."""
        return dict(self._probs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QoSDistribution):
            return NotImplemented
        return all(
            math.isclose(self[level], other[level], abs_tol=1e-12)
            for level in QoSLevel
        )

    def __hash__(self) -> int:  # pragma: no cover - distributions are not hashed
        return hash(tuple(sorted(self._probs.items())))

    def isclose(self, other: "QoSDistribution", *, abs_tol: float = 1e-9) -> bool:
        """Element-wise closeness test (for assertions in tests)."""
        return all(
            math.isclose(self[level], other[level], abs_tol=abs_tol)
            for level in QoSLevel
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{level.name}={self._probs[level]:.6f}" for level in QOS_SPECTRUM
        )
        return f"QoSDistribution({inner})"
