"""Window-of-opportunity calculus (paper Sections 1 and 3.2).

The OAQ window of opportunity is bounded *temporally* by the
alert-delivery deadline and the signal duration, and *spatially* by the
number of satellites whose travel patterns bring their footprints to
the target in time.  This module collects the protocol's timing
formulas so the satellite implementation, the analytic model and the
tests all use one definition:

* ``TC-2``: satellite ``Sn`` stops extending the chain when
  ``getTime() - t0 > tau - (n * delta + Tg)``;
* the **wait deadline**: ``Sn`` waits for a "coordination done"
  notification only while ``getTime() - t0 < tau - (n - 1) * delta``;
* ``M[k]`` (Eq. 2): the spatial bound on consecutive coverage.
"""

from __future__ import annotations

from repro.core.config import EvaluationParams
from repro.errors import ConfigurationError
from repro.geometry.plane import PlaneGeometry

__all__ = [
    "tc2_local_threshold",
    "tc2_holds",
    "wait_deadline",
    "max_chain_length",
]


def tc2_local_threshold(params: EvaluationParams, ordinal: int) -> float:
    """The "local threshold" of elapsed time for satellite ``Sn``:
    ``tau - (n * delta + Tg)``.  Exceeding it means another iteration
    cannot be guaranteed to finish and notify downstream in time."""
    if ordinal < 1:
        raise ConfigurationError(f"ordinal must be >= 1, got {ordinal}")
    return params.tau - (ordinal * params.delta + params.tg)


def tc2_holds(
    params: EvaluationParams, ordinal: int, now: float, detection_time: float
) -> bool:
    """Whether TC-2 is true for ``Sn`` at ``now`` (stop extending)."""
    return now - detection_time > tc2_local_threshold(params, ordinal)


def wait_deadline(
    params: EvaluationParams, ordinal: int, detection_time: float
) -> float:
    """Absolute time until which ``Sn`` waits for the "coordination
    done" notification: ``t0 + tau - (n - 1) * delta``.  Chosen so that
    a timeout-triggered report still lets every downstream satellite be
    notified within its own window."""
    if ordinal < 1:
        raise ConfigurationError(f"ordinal must be >= 1, got {ordinal}")
    return detection_time + params.tau - (ordinal - 1) * params.delta


def max_chain_length(geometry: PlaneGeometry, params: EvaluationParams) -> int:
    """Spatial bound on the coordination scale within the opportunity
    window: ``M[k]`` for an underlapping plane (Eq. 2); for an
    overlapping plane the opportunity is the simultaneous dual coverage,
    so two satellites participate but no chain forms."""
    if geometry.overlapping:
        return 2
    return geometry.max_consecutive_coverage(params.tau)
