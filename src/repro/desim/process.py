"""Generator-based processes on top of the event kernel.

A process is a generator that ``yield``s non-negative delays; the
kernel resumes it after each delay.  This gives sequential scenario
scripts (e.g. "wait for the footprint, take measurements, wait,
decide") without hand-rolled callback chains.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.desim.kernel import Event, Simulator
from repro.errors import ConfigurationError

__all__ = ["Process", "spawn"]

ProcessGenerator = Generator[float, None, None]


class Process:
    """A running generator process."""

    def __init__(self, simulator: Simulator, generator: ProcessGenerator):
        self.simulator = simulator
        self._generator = generator
        self._event: Optional[Event] = None
        self.finished = False

    def _resume(self) -> None:
        if self.finished:
            return
        try:
            delay = next(self._generator)
        except StopIteration:
            self.finished = True
            self._event = None
            return
        if delay is None or delay < 0:
            raise ConfigurationError(
                f"process yielded invalid delay {delay!r}; yield a float >= 0"
            )
        self._event = self.simulator.schedule(float(delay), self._resume)

    def interrupt(self) -> None:
        """Stop the process; its generator is closed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        if not self.finished:
            self._generator.close()
            self.finished = True


def spawn(simulator: Simulator, generator: ProcessGenerator) -> Process:
    """Start a generator process immediately (its body runs up to the
    first ``yield`` at the current simulation time)."""
    process = Process(simulator, generator)
    process._resume()
    return process
