"""Discrete-event simulation kernel.

A minimal, deterministic event loop: events are ``(time, sequence)``
ordered (FIFO among simultaneous events), cancellable, and carry plain
callbacks.  The OAQ protocol simulation and the plane-degradation
process run on this kernel.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule` so
    the caller can cancel it (e.g. a protocol timer).

    ``priority`` breaks ties between events at the same timestamp:
    lower values run first (message deliveries use -1 so a notification
    arriving exactly at a timer's deadline is processed before the
    timer -- the strict inequality of the paper's wait condition).
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self, time: float, priority: int, seq: int, callback: Callable, args: tuple
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self.cancelled = True

    def __repr__(self) -> str:
        status = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {status}, {self.callback!r})"


class Simulator:
    """The event loop.

    Time is a float in whatever unit the scenario chooses (the OAQ
    protocol uses minutes, matching the paper's QoS model).
    """

    def __init__(self, *, start_time: float = 0.0):
        self._start_time = start_time
        self.now = start_time
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._processed = 0

    def reset(self) -> None:
        """Return the kernel to its just-constructed state: the clock
        back at the start time, the event queue empty, and the
        tie-breaking sequence counter restarted (so a replayed scenario
        schedules events with the same ``(time, priority, seq)`` keys as
        a fresh kernel would).  Used by the batched replication engine
        (:mod:`repro.simulation.batch`) to reuse one kernel across many
        scenario replications."""
        self.now = self._start_time
        self._heap.clear()
        self._seq = itertools.count()
        self._processed = 0

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones not
        yet discarded)."""
        return len(self._heap)

    def schedule(
        self, delay: float, callback: Callable, *args: Any, priority: int = 0
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        # Push directly: a non-negative delay can never land in the
        # past, so the at() guard is redundant on this (hot) path.
        event = Event(
            self.now + delay, priority, next(self._seq), callback, args
        )
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        return event

    def at(
        self, time: float, callback: Callable, *args: Any, priority: int = 0
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule in the past (now={self.now}, requested {time})"
            )
        event = Event(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        return event

    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is
        empty."""
        while self._heap:
            _, _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, *, max_events: Optional[int] = None) -> None:
        """Run until the queue drains (or ``max_events`` is reached)."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                return

    def run_until(
        self, time: float, *, stop: Optional[Callable[[], bool]] = None
    ) -> None:
        """Run all events scheduled at or before ``time``; afterwards
        ``now`` equals ``time``.

        ``stop`` is an optional predicate evaluated after each event; a
        truthy return abandons the run immediately (``now`` stays at the
        last executed event's time).  The batched replication engine
        uses it to cut a run short once the outcome is decided.
        """
        if time < self.now:
            raise ConfigurationError(
                f"cannot run backwards (now={self.now}, requested {time})"
            )
        heap = self._heap
        while heap:
            # Discard cancelled events lazily before consulting the head
            # timestamp: a cancelled event with an early time must not
            # admit a step() that would execute the next *live* event
            # beyond the horizon.
            while heap and heap[0][3].cancelled:
                heapq.heappop(heap)
            if not heap or heap[0][0] > time:
                break
            self.step()
            if stop is not None and stop():
                return
        self.now = time
