"""Message-passing network over the DES kernel.

Models the paper's inter-satellite crosslinks and the satellite-to-
ground downlink: point-to-point messages with a configurable delivery
delay (the paper's ``delta`` is the *maximum* inter-satellite delay;
the default delivers in exactly ``delta``, a jitter hook is provided),
**fail-silent** nodes -- a failed node neither sends nor receives,
with no error signalled to peers, which is precisely the failure mode
the OAQ "coordination done" timeout protects against -- and optional
i.i.d. **message loss** for fault-injection studies (a lost message
vanishes silently in flight).

Loss comes in two flavours: a scalar ``loss_probability`` applied to
every message, and a ``loss_fn`` hook evaluated per message as
``loss_fn(now, source, destination) -> probability`` -- the mechanism
the fault-injection campaign engine (:mod:`repro.faults`) uses for
per-link loss rates and downlink blackout windows.  A probability of
``1.0`` is a total blackout: every matching message is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.desim.kernel import Simulator
from repro.errors import ConfigurationError, ProtocolError

__all__ = ["MessageRecord", "Network"]

Handler = Callable[[str, object], None]

#: Per-message loss hook: ``(now, source, destination) -> probability``.
LossFn = Callable[[float, str, str], float]


@dataclass(frozen=True)
class MessageRecord:
    """Log entry for one message (delivered or dropped)."""

    time_sent: float
    time_delivered: Optional[float]
    source: str
    destination: str
    message: object

    @property
    def dropped(self) -> bool:
        """Whether the message never reached its destination."""
        return self.time_delivered is None


class Network:
    """Point-to-point message transport with fail-silent nodes.

    Parameters
    ----------
    simulator:
        The DES kernel carrying the delivery events.
    default_delay:
        Delivery latency applied when ``send`` gets no explicit delay
        (the protocol passes the paper's ``delta``).
    delay_fn:
        Optional jitter hook ``(source, destination) -> delay``
        overriding the default.
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        default_delay: float = 0.0,
        delay_fn: Optional[Callable[[str, str], float]] = None,
        loss_probability: float = 0.0,
        loss_fn: Optional[LossFn] = None,
        rng=None,
    ):
        if default_delay < 0:
            raise ConfigurationError(
                f"default_delay must be >= 0, got {default_delay}"
            )
        if not 0.0 <= loss_probability <= 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        if (loss_probability > 0.0 or loss_fn is not None) and rng is None:
            raise ConfigurationError(
                "a random generator is required when messages can be lost"
            )
        self.simulator = simulator
        self.default_delay = default_delay
        self.delay_fn = delay_fn
        self.loss_probability = loss_probability
        self.loss_fn = loss_fn
        self._rng = rng
        self._handlers: Dict[str, Handler] = {}
        self._failed: set = set()
        self.log: List[MessageRecord] = []
        #: When False, :class:`MessageRecord` entries are not appended
        #: to :attr:`log` -- a throughput knob for batched Monte-Carlo
        #: replication, where nothing reads the log.  Delivery and loss
        #: semantics (including the random stream) are unaffected.
        self.record_log = True

    def reset(self, *, rng=None) -> None:
        """Clear all mutable transport state -- the message log and the
        fail-silent set -- while keeping the registered handlers, and
        install the generator for the next replication's loss draws.
        Used by the batched replication engine to reuse one network
        across scenario replications."""
        if (self.loss_probability > 0.0 or self.loss_fn is not None) and rng is None:
            raise ConfigurationError(
                "a random generator is required when messages can be lost"
            )
        self._rng = rng
        self._failed.clear()
        self.log = []

    def register(self, name: str, handler: Handler) -> None:
        """Attach a node: ``handler(source, message)`` is invoked on
        each delivery."""
        if name in self._handlers:
            raise ConfigurationError(f"node {name!r} is already registered")
        self._handlers[name] = handler

    def fail(self, name: str) -> None:
        """Make a node fail-silent from now on."""
        if name not in self._handlers:
            raise ConfigurationError(f"unknown node {name!r}")
        self._failed.add(name)

    def restore(self, name: str) -> None:
        """Undo :meth:`fail` (for repair scenarios)."""
        self._failed.discard(name)

    def is_failed(self, name: str) -> bool:
        """Whether the node is currently fail-silent."""
        return name in self._failed

    def send(
        self,
        source: str,
        destination: str,
        message: object,
        *,
        delay: Optional[float] = None,
    ) -> None:
        """Send ``message``; it is silently dropped when either endpoint
        is fail-silent (the sender never learns -- that is the point of
        fail-silence)."""
        if source not in self._handlers:
            # A typo'd source would otherwise bypass the fail-silence
            # check forever (``_failed`` is keyed by registered names).
            raise ProtocolError(f"message from unknown node {source!r}")
        if destination not in self._handlers:
            raise ProtocolError(f"message to unknown node {destination!r}")
        if delay is None:
            if self.delay_fn is not None:
                delay = self.delay_fn(source, destination)
            else:
                delay = self.default_delay
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        sent_at = self.simulator.now
        if source in self._failed:
            if self.record_log:
                self.log.append(
                    MessageRecord(sent_at, None, source, destination, message)
                )
            return
        if (
            self.loss_probability > 0.0 or self.loss_fn is not None
        ) and self._lost(sent_at, source, destination):
            # Crosslink corruption/erasure: the message vanishes in
            # flight, silently (the sender cannot tell).
            if self.record_log:
                self.log.append(
                    MessageRecord(sent_at, None, source, destination, message)
                )
            return
        # Deliveries outrank timers at equal timestamps: a notification
        # arriving exactly at a protocol timeout is processed first.
        self.simulator.schedule(
            delay,
            self._deliver,
            sent_at,
            source,
            destination,
            message,
            priority=-1,
        )

    def _lost(self, now: float, source: str, destination: str) -> bool:
        """Whether this message is lost in flight.  The scalar
        ``loss_probability`` and the per-message ``loss_fn`` act as
        independent erasure channels; a probability of 1.0 drops the
        message deterministically (no random draw), so blackout windows
        do not perturb the random stream of the surviving traffic."""
        probability = self.loss_probability
        if self.loss_fn is not None:
            extra = self.loss_fn(now, source, destination)
            if not 0.0 <= extra <= 1.0:
                raise ConfigurationError(
                    f"loss_fn returned {extra!r} for {source!r}->"
                    f"{destination!r}; probabilities must be in [0, 1]"
                )
            probability = 1.0 - (1.0 - probability) * (1.0 - extra)
        if probability >= 1.0:
            return True
        return probability > 0.0 and self._rng.random() < probability

    def _deliver(
        self, sent_at: float, source: str, destination: str, message: object
    ) -> None:
        if destination in self._failed:
            if self.record_log:
                self.log.append(
                    MessageRecord(sent_at, None, source, destination, message)
                )
            return
        if self.record_log:
            self.log.append(
                MessageRecord(
                    sent_at, self.simulator.now, source, destination, message
                )
            )
        self._handlers[destination](source, message)

    def delivered_count(self) -> int:
        """Messages delivered so far."""
        return sum(1 for record in self.log if not record.dropped)

    def dropped_count(self) -> int:
        """Messages dropped due to fail-silence."""
        return sum(1 for record in self.log if record.dropped)
