"""Discrete-event simulation kernel with message passing and
generator processes (substrate for the OAQ protocol simulation)."""

from repro.desim.kernel import Event, Simulator
from repro.desim.network import MessageRecord, Network
from repro.desim.process import Process, spawn

__all__ = ["Event", "MessageRecord", "Network", "Process", "Simulator", "spawn"]
